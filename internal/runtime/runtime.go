package runtime

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// ErrClosed is returned by Invoke and Step after Close: the runtime's
// policy may own resources (the sharded controller's worker pool) that are
// released on Close, so calling into it afterwards is a lifecycle error,
// not a panic.
var ErrClosed = errors.New("runtime: closed")

// ErrUnknownFunction is returned for a function index or name that was
// never registered.
var ErrUnknownFunction = errors.New("runtime: unknown function")

// ErrDeregistered is returned when an invocation targets a function whose
// slot has been deregistered — a client error (the function is gone), never
// a panic.
var ErrDeregistered = errors.New("runtime: function deregistered")

// Config assembles a live runtime.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment // one registered function per entry
	// Names optionally gives the initial functions their stable identities
	// (one per Assignment entry, validated by the identity package). When
	// nil, identity.DefaultNames applies. A runtime wrapping a policy that
	// was itself constructed with names (core.Config.Names, the *Named
	// baseline constructors) must use the same list, so both sides issue
	// identical slots during online registration.
	Names []string
	// Policy is the keep-alive controller (PULSE or any baseline). The
	// runtime owns it after construction; it must not be shared.
	//
	// Concurrency contract: KeepAlive and RecordInvocations are only ever
	// called under the runtime's exclusive minute barrier, one at a time.
	// ColdVariant, however, is called from concurrent Invokes of
	// different functions and must be safe for concurrent use against
	// state that only KeepAlive/RecordInvocations mutate — true of every
	// policy in this repo, whose ColdVariant reads construction-time or
	// barrier-updated state only.
	Policy cluster.Policy
	// Clock defaults to an uncompressed WallClock.
	Clock Clock
	// ExecScale scales simulated execution latencies applied via
	// Clock.Sleep; 1.0 sleeps full model latencies, 0 disables sleeping
	// (latencies still reported). Default 0.
	ExecScale float64
	// Cost prices keep-alive memory; defaults to the AWS-calibrated model.
	Cost cluster.CostModel
	// Observer, when non-nil, receives invocation and keep-alive samples
	// (per-function and per-variant) — attach a *telemetry.Telemetry to
	// expose labeled metrics and the decision log over the HTTP API. nil
	// disables instrumentation at zero cost on the invocation hot path.
	//
	// Delivery ordering: keep-alive and minute samples are emitted under
	// the minute barrier and never interleave with each other; invocation
	// samples are emitted outside every lock and may interleave freely
	// (implementations must be concurrency-safe, see telemetry.Observer).
	Observer telemetry.Observer
	// Serial selects the single-global-lock reference implementation:
	// every Invoke takes the exclusive minute barrier, as the runtime did
	// before lock striping. The default (false) stripes per-function
	// state so invocations of different functions never contend. The two
	// modes are behaviourally identical — proven by the differential
	// harness (differential_test.go) — and differ only in throughput;
	// Serial exists as the differential baseline and the benchmark
	// comparison point (cmd/pulseload).
	Serial bool
}

// Invocation is the outcome of one function invocation.
type Invocation struct {
	Function    int
	Minute      int
	Variant     string
	AccuracyPct float64
	ServiceSec  float64 // modeled service time (cold start + execution if cold)
	Cold        bool
}

// Stats is a snapshot of runtime counters.
type Stats struct {
	Minute           int
	Invocations      int
	WarmStarts       int
	ColdStarts       int
	TotalServiceSec  float64
	AccuracySumPct   float64
	KeepAliveCostUSD float64
	CurrentKaMMB     float64
}

// MeanAccuracyPct returns delivered accuracy per invocation.
func (s Stats) MeanAccuracyPct() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return s.AccuracySumPct / float64(s.Invocations)
}

// fnState is one function's serving state and counters, guarded by its own
// lock so invocations of different functions never contend. The struct is
// padded to a cache line to keep neighbouring functions' locks off each
// other's lines under heavy cross-core traffic.
type fnState struct {
	mu          sync.Mutex
	alive       int // variant kept alive this minute, NoVariant if none
	coldPod     int // variant cold-started earlier this minute, NoVariant if none
	count       int // invocations observed this minute
	invocations int
	warm        int
	cold        int
	serviceSec  float64
	accuracySum float64
	_           [48]byte
}

// Runtime executes invocations against policy-managed warm containers and
// advances the policy once per simulated minute.
//
// Concurrency: the hot path is lock-striped. A minute barrier (RWMutex)
// coordinates invocations with minute rollover — Invoke holds it shared,
// Step/Close hold it exclusively — and each function's state sits behind
// its own lock, so concurrent invocations of different functions proceed
// in parallel and only Step serializes the world. Global totals are
// derived by summing the per-function accumulators in function order,
// which keeps float sums bit-identical between the serial and striped
// modes. Stats takes the barrier exclusively to return a consistent
// cross-function snapshot.
type Runtime struct {
	cfg    Config
	clock  Clock
	obs    telemetry.Observer // nil when uninstrumented
	serial bool

	// barrier is the minute barrier: shared for Invoke (and other reads
	// of minute-scoped state), exclusive for Step, Close, Stats, and the
	// lazy start. minute, closed, kaMMB, and kaCostUSD are written only
	// under the exclusive barrier and may be read under the shared one.
	barrier   sync.RWMutex
	started   atomic.Bool
	closed    bool
	minute    int
	fns       []fnState
	countsBuf []int // reused Step scratch, reported to the policy
	kaMMB     float64
	kaCostUSD float64

	// reg mirrors the policy's identity registry: name → slot for the API,
	// per-slot live flags for Invoke's tombstone check. Mutated only under
	// the exclusive barrier (Register/Deregister), read under the shared one.
	reg *identity.Registry
}

// New builds a runtime. The policy's decision vector length must match the
// assignment.
func New(cfg Config) (*Runtime, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("runtime: nil policy")
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("runtime: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("runtime: no functions registered")
	}
	if cfg.ExecScale < 0 {
		return nil, fmt.Errorf("runtime: negative exec scale %v", cfg.ExecScale)
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock{}
	}
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	if cfg.Names == nil {
		cfg.Names = identity.DefaultNames(len(cfg.Assignment))
	}
	if len(cfg.Names) != len(cfg.Assignment) {
		return nil, fmt.Errorf("runtime: %d names for %d functions", len(cfg.Names), len(cfg.Assignment))
	}
	reg, err := identity.NewRegistry(cfg.Names)
	if err != nil {
		return nil, err
	}
	cfg.Assignment = append(models.Assignment(nil), cfg.Assignment...)
	cfg.Names = append([]string(nil), cfg.Names...)
	r := &Runtime{
		cfg:       cfg,
		clock:     cfg.Clock,
		obs:       cfg.Observer,
		serial:    cfg.Serial,
		fns:       make([]fnState, len(cfg.Assignment)),
		countsBuf: make([]int, len(cfg.Assignment)),
		reg:       reg,
	}
	for i := range r.fns {
		r.fns[i].alive = cluster.NoVariant
		r.fns[i].coldPod = cluster.NoVariant
	}
	return r, nil
}

// Mode names the locking architecture: "striped" or "serial".
func (r *Runtime) Mode() string {
	if r.serial {
		return "serial"
	}
	return "striped"
}

// lockShared acquires the minute barrier for an invocation: shared in
// striped mode, exclusive in the serial reference mode.
func (r *Runtime) lockShared() {
	if r.serial {
		r.barrier.Lock()
	} else {
		r.barrier.RLock()
	}
}

func (r *Runtime) unlockShared() {
	if r.serial {
		r.barrier.Unlock()
	} else {
		r.barrier.RUnlock()
	}
}

// ensureStarted pulls the first minute's keep-alive decisions exactly once.
// Lazily invoked so construction never calls into the policy; a closed
// runtime is never started (the caller will observe closed instead).
func (r *Runtime) ensureStarted() {
	if r.started.Load() {
		return
	}
	r.barrier.Lock()
	if !r.closed {
		r.startLocked()
	}
	r.barrier.Unlock()
}

// startLocked requires the exclusive barrier.
func (r *Runtime) startLocked() {
	if r.started.Load() {
		return
	}
	r.applyDecisionsLocked(r.cfg.Policy.KeepAlive(r.minute))
	r.started.Store(true)
}

// applyDecisionsLocked requires the exclusive barrier: it writes every
// function's alive variant and the minute's keep-alive cost.
func (r *Runtime) applyDecisionsLocked(decisions []int) {
	if len(decisions) != len(r.fns) {
		panic(fmt.Sprintf("runtime: policy returned %d decisions for %d functions", len(decisions), len(r.fns)))
	}
	var kam float64
	for fn, vi := range decisions {
		r.fns[fn].alive = vi
		if vi == cluster.NoVariant {
			if r.obs != nil {
				r.obs.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: r.minute, Function: fn, Variant: cluster.NoVariant})
			}
			continue
		}
		fam := r.cfg.Catalog.Families[r.cfg.Assignment[fn]]
		if vi < 0 || vi >= fam.NumVariants() {
			panic(fmt.Sprintf("runtime: policy kept invalid variant %d for function %d", vi, fn))
		}
		mem := fam.Variants[vi].MemoryMB
		kam += mem
		if r.obs != nil {
			r.obs.ObserveKeepAlive(telemetry.KeepAliveSample{
				Minute:      r.minute,
				Function:    fn,
				Variant:     vi,
				VariantName: fam.Variants[vi].Name,
				MemMB:       mem,
			})
		}
	}
	cost := r.cfg.Cost.KeepAliveUSDPerMinute(kam)
	r.kaMMB = kam
	r.kaCostUSD += cost
	if r.obs != nil {
		r.obs.ObserveMinute(telemetry.MinuteSample{Minute: r.minute, KeepAliveMB: kam, CostUSD: cost})
	}
}

// Close marks the runtime closed and releases resources owned by its
// policy: the runtime owns its Policy, so if the policy implements
// io.Closer (the sharded PULSE controller does — its worker goroutines
// stop here), it is closed. Close waits for in-flight invocations (they
// hold the barrier shared) and is idempotent. Afterwards Invoke and Step
// return ErrClosed; Stats, Minute, and AliveVariant remain readable.
func (r *Runtime) Close() error {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if c, ok := r.cfg.Policy.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NumFunctions returns the total number of function slots ever issued,
// active and tombstoned alike.
func (r *Runtime) NumFunctions() int {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return len(r.cfg.Assignment)
}

// NumActive returns the number of currently registered functions.
func (r *Runtime) NumActive() int {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.NumActive()
}

// FamilyOf returns the model family serving function fn.
func (r *Runtime) FamilyOf(fn int) (models.Family, error) {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	if fn < 0 || fn >= len(r.cfg.Assignment) {
		return models.Family{}, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
	}
	return r.cfg.Catalog.Families[r.cfg.Assignment[fn]], nil
}

// FunctionName returns the name that owns (or owned) slot fn; "" when out
// of range.
func (r *Runtime) FunctionName(fn int) string {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.Name(fn)
}

// FunctionActive reports whether slot fn is currently registered.
func (r *Runtime) FunctionActive(fn int) bool {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.Active(fn)
}

// LookupFunction returns the slot of an actively registered name.
func (r *Runtime) LookupFunction(name string) (int, bool) {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.Slot(name)
}

// Invoke executes one invocation of function fn during the current minute.
// Warm invocations run on the kept-alive variant; cold invocations create a
// container of the policy's cold variant, pay its cold-start latency, and
// leave it warm for the remainder of the minute.
//
// Invoke is safe for arbitrary concurrency: invocations of different
// functions only share the minute barrier (held in read mode) and never
// block each other; invocations of the same function serialize on that
// function's lock. Invoking a deregistered function returns an error
// wrapping ErrDeregistered — the slot check happens under the barrier, so
// it is race-free against concurrent Deregister calls.
func (r *Runtime) Invoke(fn int) (Invocation, error) {
	r.ensureStarted()
	r.lockShared()
	if r.closed {
		r.unlockShared()
		return Invocation{}, ErrClosed
	}
	if fn < 0 || fn >= len(r.fns) {
		r.unlockShared()
		return Invocation{}, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
	}
	if !r.reg.Active(fn) {
		r.unlockShared()
		return Invocation{}, fmt.Errorf("%w: %q (function %d)", ErrDeregistered, r.reg.Name(fn), fn)
	}
	fam := r.cfg.Catalog.Families[r.cfg.Assignment[fn]]
	inv := Invocation{Function: fn, Minute: r.minute}
	st := &r.fns[fn]
	st.mu.Lock()
	vi := st.alive
	if vi == cluster.NoVariant {
		vi = st.coldPod
	}
	if vi != cluster.NoVariant {
		v := fam.Variants[vi]
		inv.Variant = v.Name
		inv.AccuracyPct = v.AccuracyPct
		inv.ServiceSec = v.ExecSec
		st.warm++
	} else {
		cvi := r.cfg.Policy.ColdVariant(inv.Minute, fn)
		if cvi < 0 || cvi >= fam.NumVariants() {
			st.mu.Unlock()
			r.unlockShared()
			return Invocation{}, fmt.Errorf("runtime: policy chose invalid cold variant %d for function %d", cvi, fn)
		}
		v := fam.Variants[cvi]
		inv.Variant = v.Name
		inv.AccuracyPct = v.AccuracyPct
		inv.ServiceSec = v.ColdServiceSec()
		inv.Cold = true
		st.coldPod = cvi
		st.cold++
	}
	st.count++
	st.invocations++
	st.serviceSec += inv.ServiceSec
	st.accuracySum += inv.AccuracyPct
	st.mu.Unlock()
	scale := r.cfg.ExecScale
	r.unlockShared()

	// Instrument outside the locks: the observer serializes internally and
	// must not extend the runtime's critical section.
	if r.obs != nil {
		r.obs.ObserveInvocation(telemetry.InvocationSample{
			Minute:      inv.Minute,
			Function:    fn,
			Variant:     inv.Variant,
			Cold:        inv.Cold,
			Count:       1,
			ServiceSec:  inv.ServiceSec,
			AccuracyPct: inv.AccuracyPct,
		})
	}

	// Model the execution latency outside the locks so concurrent
	// invocations proceed.
	if scale > 0 {
		r.clock.Sleep(time.Duration(inv.ServiceSec * scale * float64(time.Second)))
	}
	return inv, nil
}

// Step closes the current minute — reporting its invocation counts to the
// policy — and opens the next one with fresh keep-alive decisions. A
// driver (ticker goroutine or test) calls it once per simulated minute.
//
// Step is the minute barrier: it waits for every in-flight invocation and
// excludes new ones for its duration, so each invocation lands entirely in
// one minute and the policy sees a consistent count vector. It returns
// ErrClosed after Close.
func (r *Runtime) Step() error {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.startLocked()
	// The exclusive barrier excludes all invocations (they hold it
	// shared), so per-function state is ours without taking the stripes.
	for i := range r.fns {
		r.countsBuf[i] = r.fns[i].count
	}
	r.cfg.Policy.RecordInvocations(r.minute, r.countsBuf)
	for i := range r.fns {
		r.fns[i].count = 0
		r.fns[i].coldPod = cluster.NoVariant
	}
	r.minute++
	r.applyDecisionsLocked(r.cfg.Policy.KeepAlive(r.minute))
	return nil
}

// Minute returns the current simulated minute.
func (r *Runtime) Minute() int {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.minute
}

// Stats returns a consistent snapshot of the runtime counters: it holds
// the minute barrier exclusively while summing the per-function
// accumulators in function order (so float totals are identical in serial
// and striped modes). It remains available after Close.
func (r *Runtime) Stats() Stats {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	s := Stats{
		Minute:           r.minute,
		KeepAliveCostUSD: r.kaCostUSD,
		CurrentKaMMB:     r.kaMMB,
	}
	for i := range r.fns {
		st := &r.fns[i]
		s.Invocations += st.invocations
		s.WarmStarts += st.warm
		s.ColdStarts += st.cold
		s.TotalServiceSec += st.serviceSec
		s.AccuracySumPct += st.accuracySum
	}
	return s
}

// AliveVariant reports which variant of fn is currently kept alive
// (cluster.NoVariant if none). It remains available after Close.
func (r *Runtime) AliveVariant(fn int) (int, error) {
	r.ensureStarted()
	r.lockShared()
	defer r.unlockShared()
	if fn < 0 || fn >= len(r.fns) {
		return 0, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
	}
	st := &r.fns[fn]
	st.mu.Lock()
	v := st.alive
	st.mu.Unlock()
	return v, nil
}
