package runtime

import (
	"errors"
	"fmt"
	"io"
	goruntime "runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// ErrClosed is returned by Invoke and Step after Close: the runtime's
// policy may own resources (the sharded controller's worker pool) that are
// released on Close, so calling into it afterwards is a lifecycle error,
// not a panic.
var ErrClosed = errors.New("runtime: closed")

// ErrUnknownFunction is returned for a function index or name that was
// never registered.
var ErrUnknownFunction = errors.New("runtime: unknown function")

// ErrDeregistered is returned when an invocation targets a function whose
// slot has been deregistered — a client error (the function is gone), never
// a panic.
var ErrDeregistered = errors.New("runtime: function deregistered")

// Serving-path concurrency modes. ModeEpoch is the default: the Invoke
// fast path takes no global lock at all — one seqlock read, one stripe
// lock, one seqlock re-check. ModeStriped is the previous architecture
// (shared RWMutex minute barrier + per-function stripes) and ModeSerial
// the single-global-lock reference; both survive as differential baselines
// and benchmark comparison points (cmd/pulseload).
const (
	ModeSerial  = "serial"
	ModeStriped = "striped"
	ModeEpoch   = "epoch"
)

// Config assembles a live runtime.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment // one registered function per entry
	// Names optionally gives the initial functions their stable identities
	// (one per Assignment entry, validated by the identity package). When
	// nil, identity.DefaultNames applies. A runtime wrapping a policy that
	// was itself constructed with names (core.Config.Names, the *Named
	// baseline constructors) must use the same list, so both sides issue
	// identical slots during online registration.
	Names []string
	// Policy is the keep-alive controller (PULSE or any baseline). The
	// runtime owns it after construction; it must not be shared.
	//
	// Concurrency contract: KeepAlive and RecordInvocations are only ever
	// called inside the runtime's exclusive write window, one at a time,
	// with no invocation body in flight (in every mode — the epoch mode's
	// quiesce protocol re-establishes exactly the exclusion the RWMutex
	// barrier used to provide, see DESIGN.md §6.6). ColdVariant, however,
	// is called from concurrent Invokes of different functions and must be
	// safe for concurrent use against state that only
	// KeepAlive/RecordInvocations mutate — true of every policy in this
	// repo, whose ColdVariant reads construction-time or barrier-updated
	// state only.
	Policy cluster.Policy
	// Clock defaults to an uncompressed WallClock.
	Clock Clock
	// ExecScale scales simulated execution latencies applied via
	// Clock.Sleep; 1.0 sleeps full model latencies, 0 disables sleeping
	// (latencies still reported). Default 0.
	ExecScale float64
	// Cost prices keep-alive memory; defaults to the AWS-calibrated model.
	Cost cluster.CostModel
	// Observer, when non-nil, receives invocation and keep-alive samples
	// (per-function and per-variant) — attach a *telemetry.Telemetry to
	// expose labeled metrics and the decision log over the HTTP API. nil
	// disables instrumentation at zero cost on the invocation hot path.
	//
	// Delivery ordering: keep-alive and minute samples are emitted inside
	// the minute write window and never interleave with each other;
	// invocation samples are emitted outside every lock and may interleave
	// freely (implementations must be concurrency-safe, see
	// telemetry.Observer).
	Observer telemetry.Observer
	// Tracer, when non-nil, samples 1-in-K invocations into span-shaped
	// trace records (see provenance.Tracer). With sampling disabled the
	// Invoke fast path pays exactly one atomic load and allocates nothing
	// (pinned by TestInvokeTracerDisabledZeroAllocs); a nil Tracer pays a
	// nil check.
	Tracer *provenance.Tracer
	// Mode selects the serving-path architecture: ModeEpoch (default),
	// ModeStriped, or ModeSerial. The three modes are behaviourally
	// identical — proven by the differential harness (differential_test.go,
	// churn_differential_test.go, alert_differential_test.go) — and differ
	// only in how Invoke synchronizes with the minute rollover.
	Mode string
	// Serial is the legacy selector for ModeSerial, kept for callers that
	// predate Mode. Setting it together with a conflicting Mode is an
	// error.
	Serial bool
}

// Invocation is the outcome of one function invocation.
type Invocation struct {
	Function    int
	Minute      int
	Variant     string
	AccuracyPct float64
	ServiceSec  float64 // modeled service time (cold start + execution if cold)
	Cold        bool
}

// Stats is a snapshot of runtime counters.
type Stats struct {
	Minute           int
	Invocations      int
	WarmStarts       int
	ColdStarts       int
	TotalServiceSec  float64
	AccuracySumPct   float64
	KeepAliveCostUSD float64
	CurrentKaMMB     float64
}

// MeanAccuracyPct returns delivered accuracy per invocation.
func (s Stats) MeanAccuracyPct() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return s.AccuracySumPct / float64(s.Invocations)
}

// fnState is one function's serving state and counters, guarded by its own
// lock so invocations of different functions never contend. Stripes live in
// fixed-size slabs (Runtime.chunks) and are reached through a pointer
// slice: growing the population appends into the current slab (or starts a
// new one), never moves a stripe, so an epoch-mode reader holding
// yesterday's slice still mutates today's stripe — and a million-slot
// runtime costs one allocation per slab instead of one per function. The
// struct is padded to two cache lines to keep neighbouring stripes' locks
// off each other's lines under heavy cross-core traffic.
type fnState struct {
	mu sync.Mutex

	// Identity, immutable once the slot is issued: the serving family and
	// the owning name (kept for ErrDeregistered messages — the registry's
	// slices may be appended to concurrently and are off-limits to
	// lock-free readers).
	family int
	name   string

	// active is the slot's tombstone flag, written only inside write
	// windows and read under the stripe lock (epoch mode) or the shared
	// barrier (striped/serial modes).
	active bool

	// dirtyMark and dirtyNext make the stripe an intrusive node in the
	// runtime's dirty list — the minute's invoked slots, chained through
	// their stripes from the atomic dirtyHead. Both fields are written only
	// under mu (the mark guards double-pushing; the head CAS itself is
	// lock-free); Step's harvest walk consumes the chain and resets the
	// mark under the same lock. Idle slots are never touched.
	dirtyMark bool
	dirtyNext int32

	// Minute-scoped serving state and cumulative counters, guarded by mu.
	alive       int // variant kept alive this minute, NoVariant if none
	coldPod     int // variant cold-started earlier this minute, NoVariant if none
	count       int // invocations observed this minute
	invocations int
	warm        int
	cold        int
	serviceSec  float64
	accuracySum float64
	_           [24]byte
}

// fnChunk is the slab size for fnState storage: slabs are allocated at full
// capacity and filled by Register, so stripe addresses are stable for the
// lifetime of the runtime.
const fnChunk = 1024

// Runtime executes invocations against policy-managed warm containers and
// advances the policy once per simulated minute.
//
// Concurrency: the hot path is lock-free in the default epoch mode. A
// seqlock-style epoch counter (seq) is even while the world is stable and
// odd while a writer (Step, Stats, Close, Register, Deregister) owns it.
// Invoke loads an even seq, takes only its function's stripe lock,
// re-checks that seq is unchanged, and serves; if the re-check fails it
// releases and retries. Writers flip seq odd and then drain every stripe
// lock once: any invocation that passed its re-check before the flip holds
// its stripe lock and finishes first, and every later invocation observes
// the odd (or advanced) seq and retries — so after the drain the writer
// owns all stripe and global state with no invocation body in flight,
// exactly the exclusion the old RWMutex minute barrier provided. Policy
// calls and Observer minute/keep-alive samples therefore keep their
// serialized ordering contracts unchanged. Global totals are derived by
// summing the per-function accumulators in function order, which keeps
// float sums bit-identical across all three modes. See DESIGN.md §6.6 for
// the memory-ordering argument.
//
// ModeStriped (Invoke holds an RWMutex barrier shared) and ModeSerial
// (every Invoke takes the barrier exclusively) survive as reference modes;
// the differential harness proves all three agree exactly.
type Runtime struct {
	cfg    Config
	clock  Clock
	obs    telemetry.Observer // nil when uninstrumented
	mode   string
	tracer *provenance.Tracer // nil when untraced
	// selfWanted caches telemetry.WantsSelf(obs): whether Step should read
	// the clock and emit StepSamples.
	selfWanted bool

	// Self-observability counters, bumped on the invocation path only in
	// their rare branches (a seqlock retry, a contended stripe) so the
	// uncontended fast path stays untouched. lastRetries/lastWait are
	// writer-owned cursors for per-minute deltas.
	seqRetries  atomic.Uint64
	stripeWait  atomic.Uint64
	lastRetries uint64
	lastWait    uint64

	// barrier serializes writers against each other and against the
	// read-only accessor surface (Minute, NumFunctions, lookups — all
	// RLock). In striped/serial modes it is additionally the minute
	// barrier for Invoke: shared in striped mode, exclusive in serial. In
	// epoch mode Invoke never touches it.
	barrier sync.RWMutex
	started atomic.Bool
	closed  atomic.Bool

	// seq is the seqlock epoch: even = stable, odd = write window open.
	// minuteA mirrors minute for the lock-free fast path; both are written
	// only inside write windows.
	seq     atomic.Uint64
	minuteA atomic.Int64

	minute    int
	fns       []*fnState
	chunks    [][]fnState                // slab storage backing fns
	fnsA      atomic.Pointer[[]*fnState] // epoch readers' view of fns
	countsBuf []int                      // reused Step scratch, reported to the policy
	kaMMB     float64
	kaCostUSD float64

	// Idle-skip state (sparse == true): the runtime serves an
	// ActiveSetPolicy with no observer attached, so Step can harvest the
	// minute's counts from the dirty list instead of scanning every
	// stripe, hand the policy a pre-built invoked list, and apply
	// decisions over the union of the previous and current active sets.
	// All are writer-owned except dirtyHead (pushed by the serving paths).
	sparse     bool
	asp        cluster.ActiveSetPolicy
	dirtyHead  atomic.Int32 // top of the dirty chain; -1 when empty
	invokedBuf []int32      // reused: this minute's invoked slots, sorted
	prevAlive  []int32      // active set the last decisions were applied to

	// reg mirrors the policy's identity registry: name → slot for the API,
	// per-slot live flags. Mutated only under the exclusive barrier
	// (Register/Deregister), read under the shared one; the fast path uses
	// the per-stripe mirror (fnState.active/name) instead.
	reg *identity.Registry
}

// New builds a runtime. The policy's decision vector length must match the
// assignment.
func New(cfg Config) (*Runtime, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("runtime: nil policy")
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("runtime: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("runtime: no functions registered")
	}
	if cfg.ExecScale < 0 {
		return nil, fmt.Errorf("runtime: negative exec scale %v", cfg.ExecScale)
	}
	mode := cfg.Mode
	switch mode {
	case "":
		if cfg.Serial {
			mode = ModeSerial
		} else {
			mode = ModeEpoch
		}
	case ModeSerial, ModeStriped, ModeEpoch:
		if cfg.Serial && mode != ModeSerial {
			return nil, fmt.Errorf("runtime: Serial conflicts with Mode %q", mode)
		}
	default:
		return nil, fmt.Errorf("runtime: unknown mode %q (want %s, %s, or %s)", mode, ModeEpoch, ModeStriped, ModeSerial)
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock{}
	}
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	if cfg.Names == nil {
		cfg.Names = identity.DefaultNames(len(cfg.Assignment))
	}
	if len(cfg.Names) != len(cfg.Assignment) {
		return nil, fmt.Errorf("runtime: %d names for %d functions", len(cfg.Names), len(cfg.Assignment))
	}
	reg, err := identity.NewRegistry(cfg.Names)
	if err != nil {
		return nil, err
	}
	cfg.Assignment = append(models.Assignment(nil), cfg.Assignment...)
	cfg.Names = append([]string(nil), cfg.Names...)
	r := &Runtime{
		cfg:        cfg,
		clock:      cfg.Clock,
		obs:        cfg.Observer,
		mode:       mode,
		tracer:     cfg.Tracer,
		selfWanted: telemetry.WantsSelf(cfg.Observer),
		fns:        make([]*fnState, 0, len(cfg.Assignment)),
		countsBuf:  make([]int, len(cfg.Assignment)),
		reg:        reg,
	}
	r.dirtyHead.Store(-1)
	// Idle-skip: with no observer (per-slot keep-alive samples need the
	// dense walk) and a policy that tracks its active set, Step runs
	// sparsely — see the Step and applyDecisionsLocked comments.
	if asp, ok := cfg.Policy.(cluster.ActiveSetPolicy); ok && cfg.Observer == nil {
		r.sparse, r.asp = true, asp
	}
	for i := range cfg.Assignment {
		r.addSlot(cfg.Assignment[i], cfg.Names[i])
	}
	fns := r.fns
	r.fnsA.Store(&fns)
	return r, nil
}

// addSlot appends one stripe, placing it in the current slab (or a fresh
// one when full). Callers must hold the exclusive barrier (or be inside
// New) and republish fnsA afterwards.
func (r *Runtime) addSlot(family int, name string) {
	if k := len(r.chunks); k == 0 || len(r.chunks[k-1]) == cap(r.chunks[k-1]) {
		r.chunks = append(r.chunks, make([]fnState, 0, fnChunk))
	}
	ch := &r.chunks[len(r.chunks)-1]
	*ch = append(*ch, fnState{
		family:    family,
		name:      name,
		active:    true,
		dirtyNext: -1,
		alive:     cluster.NoVariant,
		coldPod:   cluster.NoVariant,
	})
	r.fns = append(r.fns, &(*ch)[len(*ch)-1])
}

// Mode names the serving-path architecture: "epoch", "striped", or
// "serial".
func (r *Runtime) Mode() string {
	return r.mode
}

// lockShared acquires the minute barrier for a minute-scoped read: shared
// in striped and epoch modes, exclusive in the serial reference mode.
// (Epoch-mode Invoke does not come through here — only slow accessors
// like AliveVariant do, and those coexist with lock-free invocations
// because they read only writer-owned or stripe-locked state.)
func (r *Runtime) lockShared() {
	if r.mode == ModeSerial {
		r.barrier.Lock()
	} else {
		r.barrier.RLock()
	}
}

func (r *Runtime) unlockShared() {
	if r.mode == ModeSerial {
		r.barrier.Unlock()
	} else {
		r.barrier.RUnlock()
	}
}

// beginWrite opens a write window: with the exclusive barrier held, it
// flips the seqlock odd and drains every stripe. On return no invocation
// body is in flight and none can start until endWrite, so the caller owns
// all stripe and global state without taking stripe locks.
func (r *Runtime) beginWrite() {
	r.seq.Add(1)
	r.drainStripes()
}

// endWrite closes the write window, publishing every mutation made inside
// it: the seq store is the release the fast path's acquire loads pair
// with.
func (r *Runtime) endWrite() {
	r.seq.Add(1)
}

// drainStripes acquires and releases every stripe lock once. Called with
// the seqlock odd: any invocation already past its seq re-check holds its
// stripe lock and is waited out here; any invocation not yet past it will
// observe the odd (or advanced) seq and retry. The lock acquisition also
// carries the happens-before edge that makes those final bodies' writes
// visible to the writer.
func (r *Runtime) drainStripes() {
	for _, st := range r.fns {
		st.mu.Lock()
		//lint:ignore SA2001 the empty critical section is the point: the
		// acquire waits out the last in-flight invocation of this stripe.
		st.mu.Unlock()
	}
}

// ensureStarted pulls the first minute's keep-alive decisions exactly once.
// Lazily invoked so construction never calls into the policy; a closed
// runtime is never started (the caller will observe closed instead).
func (r *Runtime) ensureStarted() {
	if r.started.Load() {
		return
	}
	r.barrier.Lock()
	if !r.closed.Load() {
		r.startLocked()
	}
	r.barrier.Unlock()
}

// startLocked requires the exclusive barrier.
func (r *Runtime) startLocked() {
	if r.started.Load() {
		return
	}
	r.beginWrite()
	r.applyDecisionsLocked(r.cfg.Policy.KeepAlive(r.minute))
	r.endWrite()
	r.started.Store(true)
}

// applyDecisionsLocked requires an open write window (beginWrite): it
// writes every function's alive variant and the minute's keep-alive cost.
// In sparse mode only the union of the previous and current active sets is
// visited — every other slot's decision is NoVariant (the ActiveSetPolicy
// contract) and its stripe already rests at NoVariant, so the dense walk
// would write the same values; both unions iterate ascending, keeping the
// keep-alive memory sum bit-identical to the dense accumulation.
func (r *Runtime) applyDecisionsLocked(decisions []int) {
	if len(decisions) != len(r.fns) {
		panic(fmt.Sprintf("runtime: policy returned %d decisions for %d functions", len(decisions), len(r.fns)))
	}
	if r.sparse {
		r.applyDecisionsSparse(decisions)
		return
	}
	var kam float64
	for fn, vi := range decisions {
		r.fns[fn].alive = vi
		if vi == cluster.NoVariant {
			if r.obs != nil {
				r.obs.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: r.minute, Function: fn, Variant: cluster.NoVariant})
			}
			continue
		}
		fam := r.cfg.Catalog.Families[r.fns[fn].family]
		if vi < 0 || vi >= fam.NumVariants() {
			panic(fmt.Sprintf("runtime: policy kept invalid variant %d for function %d", vi, fn))
		}
		mem := fam.Variants[vi].MemoryMB
		kam += mem
		if r.obs != nil {
			r.obs.ObserveKeepAlive(telemetry.KeepAliveSample{
				Minute:      r.minute,
				Function:    fn,
				Variant:     vi,
				VariantName: fam.Variants[vi].Name,
				MemMB:       mem,
			})
		}
	}
	cost := r.cfg.Cost.KeepAliveUSDPerMinute(kam)
	r.kaMMB = kam
	r.kaCostUSD += cost
	if r.obs != nil {
		r.obs.ObserveMinute(telemetry.MinuteSample{Minute: r.minute, KeepAliveMB: kam, CostUSD: cost})
	}
}

// applyDecisionsSparse writes the decisions over the ascending merge of the
// previous minute's applied set and the policy's current active set. Plain
// stripe writes are safe here: the window is open (seq odd, chain walked),
// so no invocation body is in flight, and endWrite's release publishes the
// writes to the fast path's acquire loads. The current active set is copied
// into prevAlive because it aliases policy state that mutates next minute.
func (r *Runtime) applyDecisionsSparse(decisions []int) {
	activeNow := r.asp.ActiveSlots()
	prev := r.prevAlive
	var kam float64
	i, j := 0, 0
	for i < len(prev) || j < len(activeNow) {
		var fn int32
		switch {
		case j >= len(activeNow) || (i < len(prev) && prev[i] < activeNow[j]):
			fn = prev[i]
			i++
		case i >= len(prev) || activeNow[j] < prev[i]:
			fn = activeNow[j]
			j++
		default:
			fn = prev[i]
			i++
			j++
		}
		st := r.fns[fn]
		vi := decisions[fn]
		st.alive = vi
		if vi == cluster.NoVariant {
			continue
		}
		fam := r.cfg.Catalog.Families[st.family]
		if vi < 0 || vi >= fam.NumVariants() {
			panic(fmt.Sprintf("runtime: policy kept invalid variant %d for function %d", vi, fn))
		}
		kam += fam.Variants[vi].MemoryMB
	}
	r.prevAlive = append(r.prevAlive[:0], activeNow...)
	cost := r.cfg.Cost.KeepAliveUSDPerMinute(kam)
	r.kaMMB = kam
	r.kaCostUSD += cost
}

// Close marks the runtime closed and releases resources owned by its
// policy: the runtime owns its Policy, so if the policy implements
// io.Closer (the sharded PULSE controller does — its worker goroutines
// stop here), it is closed. Close waits for in-flight invocations (the
// write window drains them) and is idempotent. Afterwards Invoke and Step
// return ErrClosed; Stats, Minute, and AliveVariant remain readable.
func (r *Runtime) Close() error {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	if r.closed.Load() {
		return nil
	}
	r.beginWrite()
	r.closed.Store(true)
	r.endWrite()
	// The policy is closed outside the window: every retrying invocation
	// observes closed before it can reach ColdVariant again.
	if c, ok := r.cfg.Policy.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NumFunctions returns the total number of function slots ever issued,
// active and tombstoned alike.
func (r *Runtime) NumFunctions() int {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return len(r.cfg.Assignment)
}

// NumActive returns the number of currently registered functions.
func (r *Runtime) NumActive() int {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.NumActive()
}

// FamilyOf returns the model family serving function fn.
func (r *Runtime) FamilyOf(fn int) (models.Family, error) {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	if fn < 0 || fn >= len(r.cfg.Assignment) {
		return models.Family{}, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
	}
	return r.cfg.Catalog.Families[r.cfg.Assignment[fn]], nil
}

// FunctionName returns the name that owns (or owned) slot fn; "" when out
// of range.
func (r *Runtime) FunctionName(fn int) string {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.Name(fn)
}

// FunctionActive reports whether slot fn is currently registered.
func (r *Runtime) FunctionActive(fn int) bool {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.Active(fn)
}

// LookupFunction returns the slot of an actively registered name.
func (r *Runtime) LookupFunction(name string) (int, bool) {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.reg.Slot(name)
}

// serveLocked executes the invocation body for minute `minute` with st.mu
// held: tombstone check, warm/cold decision, counter updates. It is the
// single body shared by all three modes, so behavioural equivalence is by
// construction.
func (r *Runtime) serveLocked(st *fnState, fn, minute int) (Invocation, error) {
	if !st.active {
		return Invocation{}, fmt.Errorf("%w: %q (function %d)", ErrDeregistered, st.name, fn)
	}
	fam := r.cfg.Catalog.Families[st.family]
	inv := Invocation{Function: fn, Minute: minute}
	vi := st.alive
	if vi == cluster.NoVariant {
		vi = st.coldPod
	}
	if vi != cluster.NoVariant {
		v := fam.Variants[vi]
		inv.Variant = v.Name
		inv.AccuracyPct = v.AccuracyPct
		inv.ServiceSec = v.ExecSec
		st.warm++
	} else {
		cvi := r.cfg.Policy.ColdVariant(minute, fn)
		if cvi < 0 || cvi >= fam.NumVariants() {
			return Invocation{}, fmt.Errorf("runtime: policy chose invalid cold variant %d for function %d", cvi, fn)
		}
		v := fam.Variants[cvi]
		inv.Variant = v.Name
		inv.AccuracyPct = v.AccuracyPct
		inv.ServiceSec = v.ColdServiceSec()
		inv.Cold = true
		st.coldPod = cvi
		st.cold++
	}
	st.count++
	st.invocations++
	st.serviceSec += inv.ServiceSec
	st.accuracySum += inv.AccuracyPct
	return inv, nil
}

// markDirty chains stripe fn into the dirty list: the collection of slots
// that served (or attempted to serve) since the last harvest. Must be
// called with st.mu held. In epoch mode the call must precede the seqlock
// re-check: sequential consistency then orders any counted body's push
// before its re-check load, before the writer's seq flip, before the
// writer's chain Swap — so every stripe with an in-flight counted body is
// in the chain the harvest walks (and waits out via its stripe lock). A
// push whose re-check then fails leaves a count-0 node, which the harvest
// skips; no undo is needed.
func (r *Runtime) markDirty(st *fnState, fn int) {
	if st.dirtyMark {
		return
	}
	st.dirtyMark = true
	for {
		h := r.dirtyHead.Load()
		st.dirtyNext = h
		if r.dirtyHead.CompareAndSwap(h, int32(fn)) {
			return
		}
	}
}

// invokeEpoch is the lock-free fast path: load an even seq, take the
// stripe lock, re-check seq, serve. A failed re-check means a write window
// opened (or completed) in between — release and retry, so a counted
// invocation is guaranteed to have executed entirely inside one stable
// epoch, i.e. entirely inside one minute. The retry loop allocates
// nothing (pinned by TestEpochInvokeZeroAllocs). It reports how many
// times it retried (for sampled traces); retries and contended stripe
// acquisitions also feed the self-observability counters, paid only on
// their rare branches.
func (r *Runtime) invokeEpoch(fn int) (Invocation, int, error) {
	retries := 0
	for {
		e := r.seq.Load()
		if e&1 != 0 {
			retries++
			goruntime.Gosched()
			continue
		}
		if r.closed.Load() {
			if retries > 0 {
				r.seqRetries.Add(uint64(retries))
			}
			return Invocation{}, retries, ErrClosed
		}
		fns := *r.fnsA.Load()
		if fn < 0 || fn >= len(fns) {
			if retries > 0 {
				r.seqRetries.Add(uint64(retries))
			}
			return Invocation{}, retries, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
		}
		st := fns[fn]
		if !st.mu.TryLock() {
			r.stripeWait.Add(1)
			st.mu.Lock()
		}
		if r.sparse {
			r.markDirty(st, fn)
		}
		if r.seq.Load() != e {
			st.mu.Unlock()
			retries++
			goruntime.Gosched()
			continue
		}
		// Stable epoch: the writer that will end this minute must drain
		// st.mu before touching anything, so minuteA, st.alive, and the
		// counters below all belong to the same minute for the duration of
		// this body.
		inv, err := r.serveLocked(st, fn, int(r.minuteA.Load()))
		st.mu.Unlock()
		if retries > 0 {
			r.seqRetries.Add(uint64(retries))
		}
		return inv, retries, err
	}
}

// invokeBarrier is the striped/serial path: the minute barrier held shared
// (striped) or exclusive (serial), then the stripe lock.
func (r *Runtime) invokeBarrier(fn int) (Invocation, error) {
	r.lockShared()
	if r.closed.Load() {
		r.unlockShared()
		return Invocation{}, ErrClosed
	}
	if fn < 0 || fn >= len(r.fns) {
		r.unlockShared()
		return Invocation{}, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
	}
	st := r.fns[fn]
	if !st.mu.TryLock() {
		r.stripeWait.Add(1)
		st.mu.Lock()
	}
	if r.sparse {
		r.markDirty(st, fn)
	}
	inv, err := r.serveLocked(st, fn, r.minute)
	st.mu.Unlock()
	r.unlockShared()
	return inv, err
}

// Invoke executes one invocation of function fn during the current minute.
// Warm invocations run on the kept-alive variant; cold invocations create a
// container of the policy's cold variant, pay its cold-start latency, and
// leave it warm for the remainder of the minute.
//
// Invoke is safe for arbitrary concurrency: in the default epoch mode it
// takes no global lock — invocations of different functions share nothing
// but a read of the epoch counter, and invocations of the same function
// serialize on that function's stripe. Every invocation lands in exactly
// one minute (the seqlock re-check retries any invocation that straddles a
// minute rollover). Invoking a deregistered function returns an error
// wrapping ErrDeregistered — the tombstone flag is read under the stripe
// lock inside a stable epoch, so it is race-free against concurrent
// Deregister calls.
func (r *Runtime) Invoke(fn int) (Invocation, error) {
	r.ensureStarted()
	// Tracer sampling is decided up front, before the outcome is known, so
	// the number of recorded traces depends only on how many Invoke calls
	// arrived — identical across modes by construction. With sampling
	// disabled Sample is a single atomic load.
	sampled := r.tracer.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	var (
		inv     Invocation
		retries int
		err     error
	)
	if r.mode == ModeEpoch {
		inv, retries, err = r.invokeEpoch(fn)
	} else {
		inv, err = r.invokeBarrier(fn)
	}
	if sampled {
		tr := provenance.Trace{
			Minute:         inv.Minute,
			Function:       fn,
			Stripe:         fn,
			Variant:        inv.Variant,
			Cold:           inv.Cold,
			SeqlockRetries: retries,
			LatencyUs:      float64(time.Since(t0)) / float64(time.Microsecond),
		}
		if err != nil {
			tr.Error = err.Error()
		}
		r.tracer.Record(tr)
	}
	if err != nil {
		return Invocation{}, err
	}

	// Instrument outside the locks: the observer serializes internally and
	// must not extend the runtime's critical section.
	if r.obs != nil {
		r.obs.ObserveInvocation(telemetry.InvocationSample{
			Minute:      inv.Minute,
			Function:    fn,
			Variant:     inv.Variant,
			Cold:        inv.Cold,
			Count:       1,
			ServiceSec:  inv.ServiceSec,
			AccuracyPct: inv.AccuracyPct,
		})
	}

	// Model the execution latency outside the locks so concurrent
	// invocations proceed.
	if scale := r.cfg.ExecScale; scale > 0 {
		r.clock.Sleep(time.Duration(inv.ServiceSec * scale * float64(time.Second)))
	}
	return inv, nil
}

// Step closes the current minute — reporting its invocation counts to the
// policy — and opens the next one with fresh keep-alive decisions. A
// driver (ticker goroutine or test) calls it once per simulated minute.
//
// Step is the minute barrier: its write window waits for every in-flight
// invocation and excludes new ones for its duration, so each invocation
// lands entirely in one minute and the policy sees a consistent count
// vector. It returns ErrClosed after Close.
func (r *Runtime) Step() error {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	r.startLocked()
	// Self-observability: time the barrier hold when (and only when) a
	// chained observer consumes self samples — WantsSelf is cached at
	// construction, so uninstrumented runtimes never read the clock here.
	var t0 time.Time
	if r.selfWanted {
		t0 = time.Now()
	}
	// Open the window manually: the harvest loop below is the drain — each
	// stripe lock acquisition waits out that stripe's last in-flight
	// invocation, and once seq is odd no new body can start.
	r.seq.Add(1)
	if r.sparse {
		// Sparse harvest: only the stripes on the dirty chain served this
		// minute, and every stripe with an in-flight counted body is on it
		// (see markDirty), so walking the chain is both the count harvest
		// and the drain — idle slots are never touched. countsBuf holds
		// all zeros between minutes; harvested entries are reset after the
		// policy call. Pushes racing the odd window land on the fresh
		// chain with their counts intact and are harvested next minute —
		// their bodies failed the re-check, so nothing was counted now.
		r.invokedBuf = r.invokedBuf[:0]
		for h := r.dirtyHead.Swap(-1); h >= 0; {
			st := r.fns[h]
			st.mu.Lock()
			if st.count > 0 {
				r.countsBuf[h] = st.count
				r.invokedBuf = append(r.invokedBuf, h)
				st.count = 0
			}
			st.coldPod = cluster.NoVariant
			st.dirtyMark = false
			next := st.dirtyNext
			st.mu.Unlock()
			h = next
		}
		slices.Sort(r.invokedBuf)
		r.asp.RecordInvocationsSparse(r.minute, r.countsBuf, r.invokedBuf)
		for _, fn := range r.invokedBuf {
			r.countsBuf[fn] = 0
		}
	} else {
		for i, st := range r.fns {
			st.mu.Lock()
			r.countsBuf[i] = st.count
			st.count = 0
			st.coldPod = cluster.NoVariant
			st.mu.Unlock()
		}
		r.cfg.Policy.RecordInvocations(r.minute, r.countsBuf)
	}
	r.minute++
	r.minuteA.Store(int64(r.minute))
	r.applyDecisionsLocked(r.cfg.Policy.KeepAlive(r.minute))
	if r.selfWanted {
		// Emitted inside the write window, after the minute's keep-alive
		// and minute samples, reporting the minute that just closed and
		// the hot-path counter deltas accumulated during it.
		retries, wait := r.seqRetries.Load(), r.stripeWait.Load()
		telemetry.ObserveStep(r.obs, telemetry.StepSample{
			Minute:           r.minute - 1,
			Seconds:          time.Since(t0).Seconds(),
			SeqlockRetries:   retries - r.lastRetries,
			StripeContention: wait - r.lastWait,
		})
		r.lastRetries, r.lastWait = retries, wait
	}
	r.endWrite()
	return nil
}

// SeqlockRetries returns the cumulative number of epoch-mode Invoke
// fast-path retries (seqlock re-check failures and odd-seq spins) — 0 in
// the striped and serial modes, which never retry.
func (r *Runtime) SeqlockRetries() uint64 { return r.seqRetries.Load() }

// StripeContention returns the cumulative number of Invoke stripe-lock
// acquisitions that found the stripe already held — 0 in serial mode,
// whose exclusive barrier admits one invocation at a time.
func (r *Runtime) StripeContention() uint64 { return r.stripeWait.Load() }

// Tracer returns the sampled invocation tracer attached at construction
// (nil when untraced).
func (r *Runtime) Tracer() *provenance.Tracer { return r.tracer }

// Minute returns the current simulated minute.
func (r *Runtime) Minute() int {
	r.barrier.RLock()
	defer r.barrier.RUnlock()
	return r.minute
}

// Stats returns a consistent snapshot of the runtime counters: it opens a
// write window (so no invocation is mid-body anywhere) and sums the
// per-function accumulators in function order, which keeps float totals
// identical across the serial, striped, and epoch modes. It remains
// available after Close.
func (r *Runtime) Stats() Stats {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	s := Stats{
		Minute:           r.minute,
		KeepAliveCostUSD: r.kaCostUSD,
		CurrentKaMMB:     r.kaMMB,
	}
	// The summing pass is the drain: locking stripe i waits out its last
	// in-flight invocation, and the odd seq keeps every stripe read below
	// consistent with the ones already taken.
	r.seq.Add(1)
	for _, st := range r.fns {
		st.mu.Lock()
		s.Invocations += st.invocations
		s.WarmStarts += st.warm
		s.ColdStarts += st.cold
		s.TotalServiceSec += st.serviceSec
		s.AccuracySumPct += st.accuracySum
		st.mu.Unlock()
	}
	r.endWrite()
	return s
}

// AliveVariant reports which variant of fn is currently kept alive
// (cluster.NoVariant if none). It remains available after Close.
func (r *Runtime) AliveVariant(fn int) (int, error) {
	r.ensureStarted()
	r.lockShared()
	defer r.unlockShared()
	if fn < 0 || fn >= len(r.fns) {
		return 0, fmt.Errorf("%w %d", ErrUnknownFunction, fn)
	}
	st := r.fns[fn]
	st.mu.Lock()
	v := st.alive
	st.mu.Unlock()
	return v, nil
}
