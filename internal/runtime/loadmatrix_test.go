package runtime

import (
	goruntime "runtime"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/provenance"
)

// newTracedLoadRuntime is newLoadRuntime with a tracer attached — the
// constructor shape RunTracerDelta needs.
func newTracedLoadRuntime(t *testing.T, mode string, tracer *provenance.Tracer) *Runtime {
	t.Helper()
	cat, asg := testSetup(t)
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Catalog:    cat,
		Assignment: asg,
		Policy:     p,
		Clock:      NewManualClock(time.Unix(0, 0)),
		Mode:       mode,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunTracerDeltaValidation(t *testing.T) {
	mk := func(fns int, mode string, tr *provenance.Tracer) (*Runtime, error) {
		return newTracedLoadRuntime(t, mode, tr), nil
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{Duration: time.Millisecond}); err == nil {
		t.Error("tracer delta without a constructor accepted")
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{NewRuntime: mk}); err == nil {
		t.Error("zero cell duration accepted")
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{NewRuntime: mk, Duration: time.Millisecond, Stride: -1}); err == nil {
		t.Error("negative stride accepted")
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{NewRuntime: mk, Duration: time.Millisecond, Mode: "nope"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestRunTracerDeltaSmoke runs the off/on pair with a dense stride and
// checks the delta actually measured sampling: both cells served traffic,
// the on-cell tracer counted every attempt, and the published fields are
// internally consistent.
func TestRunTracerDeltaSmoke(t *testing.T) {
	var tracers []*provenance.Tracer
	d, err := RunTracerDelta(TracerDeltaConfig{
		Functions: 3,
		Duration:  10 * time.Millisecond,
		Seed:      1,
		StepEvery: 5 * time.Millisecond,
		Stride:    2,
		NewRuntime: func(fns int, mode string, tr *provenance.Tracer) (*Runtime, error) {
			if fns != 3 {
				t.Errorf("cell asked for %d functions, want 3", fns)
			}
			tracers = append(tracers, tr)
			return newTracedLoadRuntime(t, mode, tr), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tracers) != 2 || tracers[0] == nil || tracers[1] == nil {
		t.Fatalf("delta built %d runtimes, want an off and an on cell with tracers attached", len(tracers))
	}
	if st := tracers[0].Stats(); st.Enabled || st.Attempts != 0 {
		t.Errorf("off cell's tracer sampled: %+v", st)
	}
	if d.Mode != ModeEpoch || d.Stride != 2 || d.GuardPct != TracerOverheadGuardPct {
		t.Errorf("delta shape %+v, want epoch stride 2 with the published guard", d)
	}
	if d.Off.Invocations == 0 || d.On.Invocations == 0 || d.Off.Errors != 0 || d.On.Errors != 0 {
		t.Errorf("cells did not serve cleanly: off %+v on %+v", d.Off, d.On)
	}
	if d.OffThroughput != d.Off.Throughput || d.OnThroughput != d.On.Throughput {
		t.Errorf("published throughputs diverge from cell results: %+v", d)
	}
	if d.Attempts != uint64(d.On.Invocations) || d.Sampled != d.Attempts/2 {
		t.Errorf("on cell attempts %d sampled %d, want every one of %d invocations counted and half sampled",
			d.Attempts, d.Sampled, d.On.Invocations)
	}
	if d.WithinGuard != (d.OverheadPct < TracerOverheadGuardPct) {
		t.Errorf("guard verdict inconsistent: %+v", d)
	}
}

func TestRunMatrixValidation(t *testing.T) {
	mk := func(fns int, mode string) (*Runtime, error) { return newLoadRuntime(t, mode), nil }
	if _, err := RunMatrix(MatrixConfig{Duration: time.Millisecond}); err == nil {
		t.Error("matrix without a constructor accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk}); err == nil {
		t.Error("zero cell duration accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, Modes: []string{"nope"}}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, GOMAXPROCS: []int{0}}); err == nil {
		t.Error("non-positive GOMAXPROCS accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, Workers: []int{4, -1}}); err == nil {
		t.Error("negative worker count accepted")
	}
}

// TestRunMatrixSmoke runs a tiny 2×1×1×3 matrix and checks the sweep
// produced every cell, restored GOMAXPROCS, and summarized into rows with
// all three modes and populated speedups.
func TestRunMatrixSmoke(t *testing.T) {
	prev := goruntime.GOMAXPROCS(0)
	var cells int
	results, err := RunMatrix(MatrixConfig{
		GOMAXPROCS: []int{1, 2},
		Functions:  []int{3},
		Mixes:      []string{MixHotspot},
		Duration:   10 * time.Millisecond,
		Seed:       1,
		StepEvery:  5 * time.Millisecond,
		NewRuntime: func(fns int, mode string) (*Runtime, error) {
			if fns != 3 {
				t.Errorf("cell asked for %d functions, want 3", fns)
			}
			return newLoadRuntime(t, mode), nil
		},
		Progress: func(LoadResult) { cells++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goruntime.GOMAXPROCS(0); got != prev {
		t.Errorf("GOMAXPROCS left at %d, want %d restored", got, prev)
	}
	if want := 2 * 1 * 1 * 3; len(results) != want || cells != want {
		t.Fatalf("matrix produced %d results (%d progress calls), want %d", len(results), cells, want)
	}
	for _, r := range results {
		if r.Invocations == 0 || r.Errors != 0 {
			t.Errorf("cell %s/gmp%d: %d invocations, %d errors", r.Mode, r.GOMAXPROCS, r.Invocations, r.Errors)
		}
		if r.Workers != 2*r.GOMAXPROCS {
			t.Errorf("cell %s/gmp%d: workers %d, want default 2×GOMAXPROCS", r.Mode, r.GOMAXPROCS, r.Workers)
		}
	}
	points := SummarizeMatrix(results)
	if len(points) != 2 {
		t.Fatalf("summary has %d rows, want 2", len(points))
	}
	if points[0].GOMAXPROCS != 1 || points[1].GOMAXPROCS != 2 {
		t.Errorf("summary rows out of sweep order: %+v", points)
	}
	for _, p := range points {
		if len(p.Throughput) != 3 {
			t.Errorf("row %+v missing modes", p)
		}
		if p.SpeedupStripedVsSerial <= 0 || p.SpeedupEpochVsSerial <= 0 || p.SpeedupEpochVsStriped <= 0 {
			t.Errorf("row %+v has unpopulated speedups", p)
		}
	}
}
