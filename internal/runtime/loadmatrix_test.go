package runtime

import (
	goruntime "runtime"
	"testing"
	"time"
)

func TestRunMatrixValidation(t *testing.T) {
	mk := func(fns int, mode string) (*Runtime, error) { return newLoadRuntime(t, mode), nil }
	if _, err := RunMatrix(MatrixConfig{Duration: time.Millisecond}); err == nil {
		t.Error("matrix without a constructor accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk}); err == nil {
		t.Error("zero cell duration accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, Modes: []string{"nope"}}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, GOMAXPROCS: []int{0}}); err == nil {
		t.Error("non-positive GOMAXPROCS accepted")
	}
}

// TestRunMatrixSmoke runs a tiny 2×1×1×3 matrix and checks the sweep
// produced every cell, restored GOMAXPROCS, and summarized into rows with
// all three modes and populated speedups.
func TestRunMatrixSmoke(t *testing.T) {
	prev := goruntime.GOMAXPROCS(0)
	var cells int
	results, err := RunMatrix(MatrixConfig{
		GOMAXPROCS: []int{1, 2},
		Functions:  []int{3},
		Mixes:      []string{MixHotspot},
		Duration:   10 * time.Millisecond,
		Seed:       1,
		StepEvery:  5 * time.Millisecond,
		NewRuntime: func(fns int, mode string) (*Runtime, error) {
			if fns != 3 {
				t.Errorf("cell asked for %d functions, want 3", fns)
			}
			return newLoadRuntime(t, mode), nil
		},
		Progress: func(LoadResult) { cells++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goruntime.GOMAXPROCS(0); got != prev {
		t.Errorf("GOMAXPROCS left at %d, want %d restored", got, prev)
	}
	if want := 2 * 1 * 1 * 3; len(results) != want || cells != want {
		t.Fatalf("matrix produced %d results (%d progress calls), want %d", len(results), cells, want)
	}
	for _, r := range results {
		if r.Invocations == 0 || r.Errors != 0 {
			t.Errorf("cell %s/gmp%d: %d invocations, %d errors", r.Mode, r.GOMAXPROCS, r.Invocations, r.Errors)
		}
		if r.Workers != 2*r.GOMAXPROCS {
			t.Errorf("cell %s/gmp%d: workers %d, want default 2×GOMAXPROCS", r.Mode, r.GOMAXPROCS, r.Workers)
		}
	}
	points := SummarizeMatrix(results)
	if len(points) != 2 {
		t.Fatalf("summary has %d rows, want 2", len(points))
	}
	if points[0].GOMAXPROCS != 1 || points[1].GOMAXPROCS != 2 {
		t.Errorf("summary rows out of sweep order: %+v", points)
	}
	for _, p := range points {
		if len(p.Throughput) != 3 {
			t.Errorf("row %+v missing modes", p)
		}
		if p.SpeedupStripedVsSerial <= 0 || p.SpeedupEpochVsSerial <= 0 || p.SpeedupEpochVsStriped <= 0 {
			t.Errorf("row %+v has unpopulated speedups", p)
		}
	}
}
