package runtime

import (
	goruntime "runtime"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
)

// newTracedLoadRuntime is newLoadRuntime with a tracer attached — the
// constructor shape RunTracerDelta needs.
func newTracedLoadRuntime(t *testing.T, mode string, tracer *provenance.Tracer) *Runtime {
	t.Helper()
	cat, asg := testSetup(t)
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Catalog:    cat,
		Assignment: asg,
		Policy:     p,
		Clock:      NewManualClock(time.Unix(0, 0)),
		Mode:       mode,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunTracerDeltaValidation(t *testing.T) {
	mk := func(fns int, mode string, tr *provenance.Tracer) (*Runtime, error) {
		return newTracedLoadRuntime(t, mode, tr), nil
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{Duration: time.Millisecond}); err == nil {
		t.Error("tracer delta without a constructor accepted")
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{NewRuntime: mk}); err == nil {
		t.Error("zero cell duration accepted")
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{NewRuntime: mk, Duration: time.Millisecond, Stride: -1}); err == nil {
		t.Error("negative stride accepted")
	}
	if _, err := RunTracerDelta(TracerDeltaConfig{NewRuntime: mk, Duration: time.Millisecond, Mode: "nope"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestRunTracerDeltaSmoke runs the off/on pair with a dense stride and
// checks the delta actually measured sampling: both cells served traffic,
// the on-cell tracer counted every attempt, and the published fields are
// internally consistent.
func TestRunTracerDeltaSmoke(t *testing.T) {
	var tracers []*provenance.Tracer
	d, err := RunTracerDelta(TracerDeltaConfig{
		Functions: 3,
		Duration:  10 * time.Millisecond,
		Seed:      1,
		StepEvery: 5 * time.Millisecond,
		Stride:    2,
		NewRuntime: func(fns int, mode string, tr *provenance.Tracer) (*Runtime, error) {
			if fns != 3 {
				t.Errorf("cell asked for %d functions, want 3", fns)
			}
			tracers = append(tracers, tr)
			return newTracedLoadRuntime(t, mode, tr), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tracers) != 2 || tracers[0] == nil || tracers[1] == nil {
		t.Fatalf("delta built %d runtimes, want an off and an on cell with tracers attached", len(tracers))
	}
	if st := tracers[0].Stats(); st.Enabled || st.Attempts != 0 {
		t.Errorf("off cell's tracer sampled: %+v", st)
	}
	if d.Mode != ModeEpoch || d.Stride != 2 || d.GuardPct != TracerOverheadGuardPct {
		t.Errorf("delta shape %+v, want epoch stride 2 with the published guard", d)
	}
	if d.Off.Invocations == 0 || d.On.Invocations == 0 || d.Off.Errors != 0 || d.On.Errors != 0 {
		t.Errorf("cells did not serve cleanly: off %+v on %+v", d.Off, d.On)
	}
	if d.OffThroughput != d.Off.Throughput || d.OnThroughput != d.On.Throughput {
		t.Errorf("published throughputs diverge from cell results: %+v", d)
	}
	if d.Attempts != uint64(d.On.Invocations) || d.Sampled != d.Attempts/2 {
		t.Errorf("on cell attempts %d sampled %d, want every one of %d invocations counted and half sampled",
			d.Attempts, d.Sampled, d.On.Invocations)
	}
	if d.WithinGuard != (d.OverheadPct < TracerOverheadGuardPct) {
		t.Errorf("guard verdict inconsistent: %+v", d)
	}
}

func TestRunTournamentDeltaValidation(t *testing.T) {
	mkRt := func(fns int, mode string, obs telemetry.Observer) (*Runtime, error) {
		return newLoadRuntime(t, mode), nil
	}
	mkObs := func(fns int, extras bool) (telemetry.Observer, error) {
		return nil, nil
	}
	ok := TournamentDeltaConfig{
		NewRuntime: mkRt, NewObserver: mkObs,
		Duration: time.Millisecond, Entrants: []string{"mpc"},
	}
	for name, breakIt := range map[string]func(*TournamentDeltaConfig){
		"no runtime constructor":  func(c *TournamentDeltaConfig) { c.NewRuntime = nil },
		"no observer constructor": func(c *TournamentDeltaConfig) { c.NewObserver = nil },
		"zero duration":           func(c *TournamentDeltaConfig) { c.Duration = 0 },
		"empty entrant list":      func(c *TournamentDeltaConfig) { c.Entrants = nil },
		"unknown mode":            func(c *TournamentDeltaConfig) { c.Mode = "nope" },
	} {
		cfg := ok
		breakIt(&cfg)
		if _, err := RunTournamentDelta(cfg); err == nil {
			t.Errorf("tournament delta with %s accepted", name)
		}
	}
}

// TestRunTournamentDeltaSmoke runs the baseline/loaded pair with a real
// accountant and the packaged roster, and checks the pair actually
// differed: the baseline cell carried three entrants, the loaded cell
// six, and the published overhead split is per entrant.
func TestRunTournamentDeltaSmoke(t *testing.T) {
	cat, asg := testSetup(t)
	cost := cluster.DefaultCostModel()
	var accts []*attribution.Accountant
	d, err := RunTournamentDelta(TournamentDeltaConfig{
		Functions: len(asg),
		Duration:  10 * time.Millisecond,
		Seed:      1,
		StepEvery: 5 * time.Millisecond,
		Entrants:  roster.Names(),
		NewObserver: func(fns int, extras bool) (telemetry.Observer, error) {
			cfg := attribution.Config{Catalog: cat, Assignment: asg, Cost: cost}
			if extras {
				ents, err := roster.Build(roster.Names(), cat, cost)
				if err != nil {
					return nil, err
				}
				cfg.Entrants = ents
			}
			a, err := attribution.New(cfg)
			if err != nil {
				return nil, err
			}
			accts = append(accts, a)
			return a, nil
		},
		NewRuntime: func(fns int, mode string, obs telemetry.Observer) (*Runtime, error) {
			p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
			if err != nil {
				return nil, err
			}
			return New(Config{
				Catalog:    cat,
				Assignment: asg,
				Policy:     p,
				Clock:      NewManualClock(time.Unix(0, 0)),
				Mode:       mode,
				Observer:   obs,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accts) != 2 {
		t.Fatalf("delta built %d accountants, want a baseline and a loaded cell", len(accts))
	}
	if n := len(accts[0].EntrantNames()); n != attribution.NumBaselines {
		t.Errorf("baseline cell carries %d entrants, want the %d built-ins", n, attribution.NumBaselines)
	}
	if n := len(accts[1].EntrantNames()); n != attribution.NumBaselines+len(roster.Names()) {
		t.Errorf("loaded cell carries %d entrants, want %d", n, attribution.NumBaselines+len(roster.Names()))
	}
	if d.Mode != ModeEpoch || d.GuardPctPerEntrant != TournamentOverheadGuardPctPerEntrant {
		t.Errorf("delta shape %+v, want epoch with the published guard", d)
	}
	if d.Baseline.Invocations == 0 || d.Loaded.Invocations == 0 || d.Baseline.Errors != 0 || d.Loaded.Errors != 0 {
		t.Errorf("cells did not serve cleanly: baseline %+v loaded %+v", d.Baseline, d.Loaded)
	}
	if d.BaselineThroughput != d.Baseline.Throughput || d.LoadedThroughput != d.Loaded.Throughput {
		t.Errorf("published throughputs diverge from cell results: %+v", d)
	}
	if want := d.OverheadPct / float64(len(roster.Names())); d.OverheadPctPerEntrant != want {
		t.Errorf("per-entrant overhead %v, want %v across %d entrants", d.OverheadPctPerEntrant, want, len(roster.Names()))
	}
	if d.WithinGuard != (d.OverheadPctPerEntrant < TournamentOverheadGuardPctPerEntrant) {
		t.Errorf("guard verdict inconsistent: %+v", d)
	}
}

func TestRunMatrixValidation(t *testing.T) {
	mk := func(fns int, mode string) (*Runtime, error) { return newLoadRuntime(t, mode), nil }
	if _, err := RunMatrix(MatrixConfig{Duration: time.Millisecond}); err == nil {
		t.Error("matrix without a constructor accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk}); err == nil {
		t.Error("zero cell duration accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, Modes: []string{"nope"}}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, GOMAXPROCS: []int{0}}); err == nil {
		t.Error("non-positive GOMAXPROCS accepted")
	}
	if _, err := RunMatrix(MatrixConfig{NewRuntime: mk, Duration: time.Millisecond, Workers: []int{4, -1}}); err == nil {
		t.Error("negative worker count accepted")
	}
}

// TestRunMatrixSmoke runs a tiny 2×1×1×3 matrix and checks the sweep
// produced every cell, restored GOMAXPROCS, and summarized into rows with
// all three modes and populated speedups.
func TestRunMatrixSmoke(t *testing.T) {
	prev := goruntime.GOMAXPROCS(0)
	var cells int
	results, err := RunMatrix(MatrixConfig{
		GOMAXPROCS: []int{1, 2},
		Functions:  []int{3},
		Mixes:      []string{MixHotspot},
		Duration:   10 * time.Millisecond,
		Seed:       1,
		StepEvery:  5 * time.Millisecond,
		NewRuntime: func(fns int, mode string) (*Runtime, error) {
			if fns != 3 {
				t.Errorf("cell asked for %d functions, want 3", fns)
			}
			return newLoadRuntime(t, mode), nil
		},
		Progress: func(LoadResult) { cells++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goruntime.GOMAXPROCS(0); got != prev {
		t.Errorf("GOMAXPROCS left at %d, want %d restored", got, prev)
	}
	if want := 2 * 1 * 1 * 3; len(results) != want || cells != want {
		t.Fatalf("matrix produced %d results (%d progress calls), want %d", len(results), cells, want)
	}
	for _, r := range results {
		if r.Invocations == 0 || r.Errors != 0 {
			t.Errorf("cell %s/gmp%d: %d invocations, %d errors", r.Mode, r.GOMAXPROCS, r.Invocations, r.Errors)
		}
		if r.Workers != 2*r.GOMAXPROCS {
			t.Errorf("cell %s/gmp%d: workers %d, want default 2×GOMAXPROCS", r.Mode, r.GOMAXPROCS, r.Workers)
		}
	}
	points := SummarizeMatrix(results)
	if len(points) != 2 {
		t.Fatalf("summary has %d rows, want 2", len(points))
	}
	if points[0].GOMAXPROCS != 1 || points[1].GOMAXPROCS != 2 {
		t.Errorf("summary rows out of sweep order: %+v", points)
	}
	for _, p := range points {
		if len(p.Throughput) != 3 {
			t.Errorf("row %+v missing modes", p)
		}
		if p.SpeedupStripedVsSerial <= 0 || p.SpeedupEpochVsSerial <= 0 || p.SpeedupEpochVsStriped <= 0 {
			t.Errorf("row %+v has unpopulated speedups", p)
		}
	}
}
