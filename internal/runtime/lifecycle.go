package runtime

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Online function lifecycle for the live runtime. Register and Deregister
// take the exclusive barrier and open a write window — the same discipline
// Step uses — so they are serialized against every invocation and every
// minute rollover in all three serving modes. Inside the window no stripe
// mutex is held by anyone and no invocation body is in flight, which is
// what makes mutating the policy and growing the population safe; stripes
// themselves are heap-allocated and reached through a pointer slice, so
// growth appends a pointer and never moves a stripe out from under a
// lock-free reader holding the previous slice.
//
// The runtime delegates slot issuance to its policy first and mirrors the
// result in its own registry; a disagreement between the two is an invariant
// violation and surfaces as an error, never as silent skew.

// Register adds a new function served by the given model family and returns
// its slot. The policy must support online registration (implement
// cluster.DynamicPolicy — PULSE and every baseline in this repo do). The new
// function starts with no warm container and no learned state: its first
// invocations are cold by construction, the paper's rule for a function the
// controller has never seen.
func (r *Runtime) Register(name string, family int) (int, error) {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	if r.closed.Load() {
		return 0, ErrClosed
	}
	dp, ok := r.cfg.Policy.(cluster.DynamicPolicy)
	if !ok {
		return 0, fmt.Errorf("runtime: policy %q does not support online registration", r.cfg.Policy.Name())
	}
	if family < 0 || family >= len(r.cfg.Catalog.Families) {
		return 0, fmt.Errorf("runtime: family %d out of range for %q", family, name)
	}
	// The window must open before the policy call: ColdVariant from a
	// concurrent invocation may read the arrays RegisterFunction grows.
	r.beginWrite()
	defer r.endWrite()
	slot, err := dp.RegisterFunction(name, family)
	if err != nil {
		return 0, err
	}
	mirror, err := r.reg.Register(name)
	if err != nil {
		// The policy accepted the name but the runtime's mirror did not:
		// the two populations were out of sync at construction.
		return 0, fmt.Errorf("runtime: registry out of sync with policy: %w", err)
	}
	if mirror != slot {
		return 0, fmt.Errorf("runtime: policy issued slot %d for %q, runtime expected %d", slot, name, mirror)
	}
	r.cfg.Assignment = append(r.cfg.Assignment, family)
	r.cfg.Names = append(r.cfg.Names, name)
	r.addSlot(family, name)
	fns := r.fns
	r.fnsA.Store(&fns)
	r.countsBuf = append(r.countsBuf, 0)
	if r.obs != nil {
		telemetry.ObserveLifecycle(r.obs, telemetry.RegisterSample{
			Minute:   r.minute,
			Function: slot,
			Name:     name,
			Family:   family,
		})
	}
	return slot, nil
}

// Deregister retires the named function: its slot is tombstoned in the
// policy and the runtime, any warm container is torn down, and subsequent
// Invokes of the slot return ErrDeregistered. Counters already accumulated
// for the function remain part of Stats. The slot is never reused; a later
// Register of the same name gets a fresh slot with cold state.
func (r *Runtime) Deregister(name string) error {
	r.barrier.Lock()
	defer r.barrier.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	dp, ok := r.cfg.Policy.(cluster.DynamicPolicy)
	if !ok {
		return fmt.Errorf("runtime: policy %q does not support online deregistration", r.cfg.Policy.Name())
	}
	slot, ok := r.reg.Slot(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownFunction, name)
	}
	r.beginWrite()
	defer r.endWrite()
	if err := dp.DeregisterFunction(name); err != nil {
		return err
	}
	if _, err := r.reg.Deregister(name); err != nil {
		return fmt.Errorf("runtime: registry out of sync with policy: %w", err)
	}
	st := r.fns[slot]
	st.active = false
	st.alive = cluster.NoVariant
	st.coldPod = cluster.NoVariant
	if r.obs != nil {
		telemetry.ObserveLifecycleEnd(r.obs, telemetry.DeregisterSample{
			Minute:   r.minute,
			Function: slot,
			Name:     name,
		})
	}
	return nil
}
