package runtime

// Provenance differential harness: the decision provenance recorder
// consumes only barrier-serialized samples, so its per-function decision
// rings must be reflect.DeepEqual across the serial, striped, and epoch
// runtimes — under sequential and per-function-goroutine replay, with and
// without churn. The sampled tracer's recorded-trace *count* is a pure
// function of the Invoke attempt count, so it must also agree across
// modes (contents legitimately differ under parallel interleaving). CI's
// 'Differential|Sharded' -race regex picks this suite up.

import (
	"reflect"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// provenanceStride is the 1-in-K sampling period the differential replays
// run with; deliberately not a divisor of anything round.
const provenanceStride = 7

// TestDifferentialProvenanceRings replays the azure-like workload through
// the PULSE controller in every runtime mode with a shared provenance
// recorder observing both layers (the pulsed deployment shape) and a
// stride-sampling tracer on the Invoke path. The serial sequential replay
// is ground truth: every other mode must produce DeepEqual decision rings
// and the identical sampled-trace count.
func TestDifferentialProvenanceRings(t *testing.T) {
	cat := models.PaperCatalog()
	wl := runtimeWorkloads(t)[0]
	asg := make(models.Assignment, len(wl.tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	names := identity.DefaultNames(len(asg))

	run := func(mode string, parallel bool) (map[string][]provenance.Decision, provenance.TracerStats) {
		rec, err := provenance.NewRecorder(provenance.RecorderConfig{
			Catalog: cat, Assignment: asg, Names: names, Window: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		tracer := provenance.NewTracer(provenance.TracerConfig{Stride: provenanceStride})
		p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Observer: rec})
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Catalog:    cat,
			Assignment: asg,
			Policy:     p,
			Clock:      NewManualClock(time.Unix(0, 0)),
			Observer:   rec,
			Mode:       mode,
			Tracer:     tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		replayCapture(t, r, wl.tr, parallel)
		return rec.Rings(), tracer.Stats()
	}

	serialRings, serialTracer := run(ModeSerial, false)

	// The ground truth must be non-trivial, or DeepEqual proves nothing.
	decisions, planned := 0, 0
	for _, ring := range serialRings {
		decisions += len(ring)
		for _, d := range ring {
			if d.PlannedAt >= 0 && d.Prob > 0 {
				planned++
			}
		}
	}
	if decisions == 0 || planned == 0 {
		t.Fatalf("serial replay recorded %d decisions (%d plan-backed); the workload exercises nothing", decisions, planned)
	}
	if serialTracer.Sampled == 0 || serialTracer.Sampled != serialTracer.Attempts/provenanceStride {
		t.Fatalf("serial tracer %+v: want floor(attempts/%d) sampled", serialTracer, provenanceStride)
	}

	for _, cmp := range []struct {
		name     string
		mode     string
		parallel bool
	}{
		{"striped-parallel", ModeStriped, true},
		{"epoch-parallel", ModeEpoch, true},
		{"striped-sequential", ModeStriped, false},
		{"epoch-sequential", ModeEpoch, false},
	} {
		rings, tr := run(cmp.mode, cmp.parallel)
		if !reflect.DeepEqual(serialRings, rings) {
			for name := range serialRings {
				if !reflect.DeepEqual(serialRings[name], rings[name]) {
					t.Errorf("%s: decision ring for %q diverges:\nserial: %+v\n%s: %+v",
						cmp.name, name, serialRings[name], cmp.name, rings[name])
					break
				}
			}
		}
		if tr.Attempts != serialTracer.Attempts || tr.Sampled != serialTracer.Sampled {
			t.Errorf("%s: tracer counts diverge: %d/%d attempts, %d/%d sampled",
				cmp.name, tr.Attempts, serialTracer.Attempts, tr.Sampled, serialTracer.Sampled)
		}
	}
}

// TestDifferentialProvenanceChurn repeats the ring-equality proof under
// online registration and deregistration: identity-keyed rings must carry
// decisions across a name's re-registration identically in every mode.
func TestDifferentialProvenanceChurn(t *testing.T) {
	cat := models.PaperCatalog()
	tr := churnRuntimeWorkload(t)
	policies, names, initAsg := churnRuntimePolicies(t, cat, tr)
	mkPolicy := policies["pulse"]

	run := func(mode string, parallel bool) (map[string][]provenance.Decision, provenance.TracerStats) {
		rec, err := provenance.NewRecorder(provenance.RecorderConfig{
			Catalog: cat, Assignment: initAsg, Names: names, Window: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		tracer := provenance.NewTracer(provenance.TracerConfig{Stride: provenanceStride})
		r, err := New(Config{
			Catalog:    cat,
			Assignment: initAsg,
			Names:      names,
			Policy:     mkPolicy(rec),
			Clock:      NewManualClock(time.Unix(0, 0)),
			Observer:   rec,
			Mode:       mode,
			Tracer:     tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		replayChurn(t, r, tr, parallel)
		return rec.Rings(), tracer.Stats()
	}

	serialRings, serialTracer := run(ModeSerial, false)
	if len(serialRings) <= len(names) {
		t.Fatalf("churn replay tracked %d identities from %d initial: no arrivals exercised", len(serialRings), len(names))
	}
	for _, cmp := range []struct {
		name     string
		mode     string
		parallel bool
	}{
		{"striped-parallel", ModeStriped, true},
		{"epoch-parallel", ModeEpoch, true},
	} {
		rings, trc := run(cmp.mode, cmp.parallel)
		if !reflect.DeepEqual(serialRings, rings) {
			t.Errorf("%s: churn decision rings diverge (%d vs %d identities)", cmp.name, len(serialRings), len(rings))
		}
		if trc.Attempts != serialTracer.Attempts || trc.Sampled != serialTracer.Sampled {
			t.Errorf("%s: tracer counts diverge under churn: %d/%d attempts, %d/%d sampled",
				cmp.name, trc.Attempts, serialTracer.Attempts, trc.Sampled, serialTracer.Sampled)
		}
	}
}

// TestInvokeTracerDisabledZeroAllocs pins the cost of *carrying* a tracer:
// with sampling disabled (stride 0), Invoke must stay allocation-free in
// every mode — the disabled check is one atomic load. Run by the CI alloc
// job.
func TestInvokeTracerDisabledZeroAllocs(t *testing.T) {
	cat, asg := testSetup(t)
	for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) {
			pol := &parityPolicy{cat: cat, asg: asg}
			tracer := provenance.NewTracer(provenance.TracerConfig{})
			r, err := New(Config{
				Catalog:    cat,
				Assignment: asg,
				Policy:     pol,
				Clock:      NewManualClock(time.Unix(0, 0)),
				Mode:       mode,
				Tracer:     tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if _, err := r.Invoke(0); err != nil { // warm the path
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(1000, func() {
				if _, err := r.Invoke(0); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s Invoke with disabled tracer allocates %v/op, want 0", mode, allocs)
			}
			if st := tracer.Stats(); st.Attempts != 0 {
				t.Errorf("disabled tracer counted %d attempts", st.Attempts)
			}
		})
	}
}

// TestStepProvenanceIdleMinuteZeroAllocs pins provenance recording on idle
// minutes: once each function's ring exists, a whole Step — harvest,
// policy, keep-alive samples into the recorder, minute rollup, step
// self-sample — allocates nothing, in every mode. Run by the CI alloc job.
func TestStepProvenanceIdleMinuteZeroAllocs(t *testing.T) {
	cat, asg := testSetup(t)
	names := identity.DefaultNames(len(asg))
	for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) {
			rec, err := provenance.NewRecorder(provenance.RecorderConfig{
				Catalog: cat, Assignment: asg, Names: names, Window: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !telemetry.WantsSelf(rec) {
				t.Fatal("recorder does not register as a self observer")
			}
			pol := &parityPolicy{cat: cat, asg: asg}
			r, err := New(Config{
				Catalog:    cat,
				Assignment: asg,
				Policy:     pol,
				Clock:      NewManualClock(time.Unix(0, 0)),
				Observer:   rec,
				Mode:       mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			// Warm: the first decisions allocate each function's ring (and
			// the policy its buffer); steady state must then be flat.
			for i := 0; i < 3; i++ {
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if allocs := testing.AllocsPerRun(500, func() {
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s idle-minute Step with recorder attached allocates %v/op, want 0", mode, allocs)
			}
			ex, err := rec.Explain(names[0], 1)
			if err != nil || len(ex.Decisions) != 1 {
				t.Fatalf("recorder captured nothing: %+v, %v", ex, err)
			}
		})
	}
}
