package runtime

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

func newFixedPolicy(cat *models.Catalog, asg models.Assignment) (cluster.Policy, error) {
	return policy.NewFixed(cat, asg, 10, policy.QualityHighest)
}

// newInstrumentedRuntime builds a live runtime driven by the real PULSE
// controller with a shared telemetry pipeline observing both layers, the
// deployment shape cmd/pulsed assembles.
func newInstrumentedRuntime(t *testing.T, nFunctions int) (*API, *Runtime, *telemetry.Telemetry) {
	t.Helper()
	cat := models.PaperCatalog()
	asg := make(models.Assignment, nFunctions)
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Observer: tel})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Catalog:    cat,
		Assignment: asg,
		Policy:     p,
		Clock:      NewManualClock(time.Unix(0, 0)),
		Observer:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	api, err := NewInstrumentedAPI(rt, tel)
	if err != nil {
		t.Fatal(err)
	}
	return api, rt, tel
}

func get(t *testing.T, api *API, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMetricsMethodNotAllowedIsPlainText(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("405 content type = %q, want text/plain", ct)
	}
	if !strings.Contains(rec.Body.String(), "GET required") {
		t.Errorf("405 body = %q", rec.Body.String())
	}
}

func TestMetricsContentType(t *testing.T) {
	api, _ := newTestAPI(t)
	rec := get(t, api, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("content type = %q", ct)
	}
}

func TestEventsWithoutTelemetry(t *testing.T) {
	api, _ := newTestAPI(t) // NewAPI: no telemetry attached
	for _, path := range []string{"/events", "/decisions"} {
		rec := get(t, api, path)
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s without telemetry = %d, want 404", path, rec.Code)
		}
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s error payload = %q (%v)", path, rec.Body.String(), err)
		}
	}
}

func TestEventsDecisionsMethodNotAllowed(t *testing.T) {
	api, _, _ := newInstrumentedRuntime(t, 3)
	for _, path := range []string{"/events", "/decisions"} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d", path, rec.Code)
		}
	}
}

func TestEventsBadParams(t *testing.T) {
	api, _, _ := newInstrumentedRuntime(t, 3)
	for _, path := range []string{
		"/events?fn=zap",
		"/events?since=minus",
		"/events?limit=-1",
		"/events?limit=zap",
	} {
		rec := get(t, api, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
	}
}

// TestInstrumentedAPILiveRuntime is the tentpole acceptance test: a live
// runtime under the real PULSE controller runs several simulated minutes —
// a steady phase that establishes the prior keep-alive memory, then a burst
// phase in which every function goes active, triggering an Algorithm 1 peak
// and Algorithm 2 downgrades — and the whole decision trail is read back
// over /metrics, /events, and /decisions.
func TestInstrumentedAPILiveRuntime(t *testing.T) {
	const nFunctions = 12
	api, rt, tel := newInstrumentedRuntime(t, nFunctions)

	// Phase 1: only function 0 is active; steady one-invocation-per-minute
	// traffic keeps its planned variant alive and stabilizes the prior.
	for m := 0; m < 10; m++ {
		if _, err := rt.Invoke(0); err != nil {
			t.Fatal(err)
		}
		rt.Step()
	}

	// Phase 2: every function goes active at once. The sum of the newly
	// planned keep-alive variants jumps past the prior by more than KM_T,
	// which Algorithm 1 must flag as a peak and Algorithm 2 must flatten.
	sawDowngrade := false
	for m := 0; m < 30 && !sawDowngrade; m++ {
		for fn := 0; fn < nFunctions; fn++ {
			if _, err := rt.Invoke(fn); err != nil {
				t.Fatal(err)
			}
		}
		rt.Step()
		sawDowngrade = len(tel.Events().Select(telemetry.Filter{Kind: telemetry.KindDowngrade})) > 0
	}
	if !sawDowngrade {
		t.Fatal("no downgrade after 30 burst minutes — peak never detected")
	}

	// /metrics: per-function and per-variant labeled series plus the
	// service-time histogram.
	rec := get(t, api, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	metrics := rec.Body.String()
	for _, want := range []string{
		`pulse_function_invocations_total{function="0",variant="`,
		`,start="cold"} `,
		`,start="warm"} `,
		"# TYPE pulse_function_service_seconds histogram",
		`pulse_function_service_seconds_bucket{function="0",le="+Inf"}`,
		`pulse_function_service_seconds_sum{function="0"}`,
		`pulse_function_service_seconds_count{function="0"}`,
		`pulse_function_keepalive_mb{function="0",variant="`,
		"# TYPE pulse_downgrades_total counter",
		"# TYPE pulse_peak_active gauge",
		"pulse_invocations_total", // global scalars still exposed
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The peak episode must be visible: at least one downgrade counted.
	if !strings.Contains(metrics, "pulse_downgrades_total{") {
		t.Error("metrics has no per-function downgrade series")
	}

	// /events: schedule events for function 0 exist and filters apply.
	rec = get(t, api, "/events?kind=schedule&fn=0&limit=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("events = %d", rec.Code)
	}
	var evResp struct {
		Total  uint64            `json:"total"`
		Events []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evResp); err != nil {
		t.Fatal(err)
	}
	if evResp.Total == 0 || len(evResp.Events) == 0 || len(evResp.Events) > 5 {
		t.Fatalf("events total=%d len=%d", evResp.Total, len(evResp.Events))
	}
	for _, e := range evResp.Events {
		if e.Kind != telemetry.KindSchedule || e.Function != 0 {
			t.Errorf("filter leak: %+v", e)
		}
		if len(e.Plan) == 0 || len(e.Probs) != len(e.Plan) {
			t.Errorf("schedule event without plan: %+v", e)
		}
	}

	// /decisions: the downgrade records carry the full utility breakdown
	// (Ai, Pr, Ip, Uv) and a peak-enter episode exists.
	rec = get(t, api, "/decisions")
	if rec.Code != http.StatusOK {
		t.Fatalf("decisions = %d", rec.Code)
	}
	var dec struct {
		Downgrades []telemetry.Event `json:"downgrades"`
		Peaks      []telemetry.Event `json:"peaks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dec); err != nil {
		t.Fatal(err)
	}
	if len(dec.Downgrades) == 0 {
		t.Fatal("no downgrades in /decisions")
	}
	for _, d := range dec.Downgrades {
		if d.Kind != telemetry.KindDowngrade {
			t.Errorf("downgrade kind = %q", d.Kind)
		}
		if d.FromVariant <= d.ToVariant {
			t.Errorf("not a downgrade: from %d to %d", d.FromVariant, d.ToVariant)
		}
		if diff := d.Uv - (d.Ai + d.Pr + d.Ip); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Uv %v != Ai %v + Pr %v + Ip %v", d.Uv, d.Ai, d.Pr, d.Ip)
		}
		if d.Ai <= 0 {
			t.Errorf("downgrade with non-positive accuracy impact: %+v", d)
		}
	}
	hasEnter := false
	for _, p := range dec.Peaks {
		if p.Kind == telemetry.KindPeakEnter {
			hasEnter = true
			if p.KaMMB <= p.TargetKaMMB {
				t.Errorf("peak-enter KaM %v not above target %v", p.KaMMB, p.TargetKaMMB)
			}
		}
	}
	if !hasEnter {
		t.Error("no peak-enter episode in /decisions")
	}

	// Raw JSON of /decisions must expose the documented field names.
	raw := rec.Body.String()
	for _, field := range []string{`"ai"`, `"pr"`, `"ip"`, `"uv"`, `"fromVariant"`, `"toVariant"`} {
		if !strings.Contains(raw, field) {
			t.Errorf("decisions JSON missing field %s", field)
		}
	}
}

// TestEventsSinceSeq exercises the since-sequence pagination parameter.
func TestEventsSinceSeq(t *testing.T) {
	api, rt, tel := newInstrumentedRuntime(t, 3)
	for m := 0; m < 3; m++ {
		if _, err := rt.Invoke(0); err != nil {
			t.Fatal(err)
		}
		rt.Step()
	}
	total := tel.Events().Total()
	if total < 2 {
		t.Fatalf("too few events: %d", total)
	}
	last := total - 1 // sequence numbers are 0-based
	rec := get(t, api, fmt.Sprintf("/events?since=%d", last))
	var resp struct {
		Events []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Seq != last {
		t.Errorf("since=%d returned %d events", last, len(resp.Events))
	}
}

// TestInvokeObserverOverhead asserts the observer seam is free on the hot
// path: Invoke with a no-op observer allocates no more than with none.
func TestInvokeObserverOverhead(t *testing.T) {
	cat, asg := testSetup(t)
	measure := func(obs telemetry.Observer) float64 {
		p, err := newFixedPolicy(cat, asg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Invoke(0); err != nil { // warm the cold path
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := rt.Invoke(0); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare := measure(nil)
	nop := measure(telemetry.Nop{})
	if nop > bare {
		t.Errorf("no-op observer adds allocations on Invoke: %v > %v", nop, bare)
	}
}

func BenchmarkInvoke(b *testing.B) {
	cat := models.PaperCatalog()
	asg := models.Assignment{0, 1, 2}
	for _, bc := range []struct {
		name string
		obs  func(b *testing.B) telemetry.Observer
	}{
		{"uninstrumented", func(*testing.B) telemetry.Observer { return nil }},
		{"nop", func(*testing.B) telemetry.Observer { return telemetry.Nop{} }},
		{"telemetry", func(b *testing.B) telemetry.Observer {
			tel, err := telemetry.New(telemetry.Config{})
			if err != nil {
				b.Fatal(err)
			}
			return tel
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p, err := newFixedPolicy(cat, asg)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Observer: bc.obs(b)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rt.Invoke(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Invoke(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
