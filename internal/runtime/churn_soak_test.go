package runtime

// Churn soak: a runtime that registers, drives, and deregisters functions
// forever must reach a bounded steady-state heap cost per departed slot.
// Slots are never reused, so some per-slot cost is permanent by design —
// the registry tombstone, the 128-byte fnState, the controller's zeroed
// slab row — but the heavy learned state (histograms, spill lists, local
// queues, plan rows, attribution ledgers) must be released at deregister.
// Before the release rule existed, every departed function kept its full
// History and plan ring alive forever; this test pins the fix.

import (
	"fmt"
	goruntime "runtime"
	"testing"

	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

// soakHeapBudgetBytes bounds the steady-state retained heap per departed
// function. The permanent tombstone cost is roughly: runtime fnState
// (128 B) + fns pointer (8 B) + countsBuf (8 B) + two registry entries with
// the name string (~150 B) + controller slab cells (lastInv, buckets,
// totals, row/expiry, decision/prob ≈ 230 B) + empty slice headers (~70 B).
// The budget leaves ~2× headroom over that sum for allocator rounding and
// GC measurement noise; retained per-slot maps or plan rows (the bug this
// pins against) cost multiple KB per slot and blow straight through it.
const soakHeapBudgetBytes = 1536

func TestChurnSoakBoundedMemory(t *testing.T) {
	cat := models.PaperCatalog()
	asg := make(models.Assignment, 4)
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Mode: ModeEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if !rt.sparse {
		t.Fatal("sparse serving path not engaged; the soak must cover it")
	}

	const (
		cycles   = 8
		perCycle = 250
		minutes  = 10
	)
	heapEnd := make([]int64, 0, cycles)
	next := 0
	names := make([]string, 0, perCycle)
	for c := 0; c < cycles; c++ {
		names = names[:0]
		for i := 0; i < perCycle; i++ {
			name := fmt.Sprintf("soak-%d", next)
			next++
			if _, err := rt.Register(name, next%len(cat.Families)); err != nil {
				t.Fatal(err)
			}
			names = append(names, name)
		}
		// Drive real load so histories, plans, and priorities accumulate
		// state worth releasing.
		for m := 0; m < minutes; m++ {
			for _, name := range names {
				slot, ok := rt.LookupFunction(name)
				if !ok {
					t.Fatalf("cycle %d: %s vanished", c, name)
				}
				if _, err := rt.Invoke(slot); err != nil {
					t.Fatal(err)
				}
			}
			if err := rt.Step(); err != nil {
				t.Fatal(err)
			}
		}
		for _, name := range names {
			if err := rt.Deregister(name); err != nil {
				t.Fatal(err)
			}
		}
		// Idle minutes drain the departed slots' plans so compaction
		// returns their rows to the free list.
		for m := 0; m < minutes+5; m++ {
			if err := rt.Step(); err != nil {
				t.Fatal(err)
			}
		}
		goruntime.GC()
		goruntime.GC()
		var ms goruntime.MemStats
		goruntime.ReadMemStats(&ms)
		heapEnd = append(heapEnd, int64(ms.HeapAlloc))
	}

	// Steady state: per-departed-slot growth from the end of cycle 2 on
	// (the first cycles also pay one-time slab and buffer capacity).
	departed := int64(perCycle * (cycles - 2))
	growth := heapEnd[cycles-1] - heapEnd[1]
	perFn := float64(growth) / float64(departed)
	t.Logf("heap growth %d B over %d departed functions = %.0f B/function (budget %d)",
		growth, departed, perFn, soakHeapBudgetBytes)
	if perFn > soakHeapBudgetBytes {
		t.Errorf("steady-state heap retention %.0f B per departed function exceeds budget %d B",
			perFn, soakHeapBudgetBytes)
	}
}
