package runtime

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/provenance"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// newAttributedAPI builds a runtime with an attribution accountant
// attached as its observer and to its API, plus some served traffic.
func newAttributedAPI(t *testing.T) (*API, *Runtime) {
	t.Helper()
	cat, asg := testSetup(t)
	acct, err := attribution.New(attribution.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Catalog: cat, Assignment: asg, Policy: p,
		Clock: NewManualClock(time.Unix(0, 0)), Observer: acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	api, err := NewAPI(rt)
	if err != nil {
		t.Fatal(err)
	}
	api.AttachAttribution(acct)
	// Serve a few minutes of traffic so the report has content.
	for m := 0; m < 15; m++ {
		if m%3 == 0 {
			for fn := 0; fn < rt.NumFunctions(); fn++ {
				if _, err := rt.Invoke(fn); err != nil {
					t.Fatal(err)
				}
			}
		}
		rt.Step()
	}
	return api, rt
}

func TestAttributionEndpointsDisabled(t *testing.T) {
	api, _ := newTestAPI(t) // no accountant attached
	for _, path := range []string{"/attribution", "/timeseries?metric=invocations", "/top"} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s without attribution = %d, want 404", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "attribution not enabled") {
			t.Errorf("GET %s body %q lacks disabled notice", path, rec.Body.String())
		}
	}
	// Wrong method takes precedence over the 404.
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/attribution", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /attribution = %d, want 405", rec.Code)
	}
}

func TestAttributionEndpoint(t *testing.T) {
	api, rt := newAttributedAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/attribution", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /attribution = %d: %s", rec.Code, rec.Body.String())
	}
	var rep attribution.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Functions) != rt.NumFunctions() {
		t.Errorf("report has %d functions, want %d", len(rep.Functions), rt.NumFunctions())
	}
	st := rt.Stats()
	if rep.Total.Actual.Invocations != st.Invocations {
		t.Errorf("report invocations %d, runtime served %d", rep.Total.Actual.Invocations, st.Invocations)
	}
	if rep.Total.Actual.ColdStarts != st.ColdStarts {
		t.Errorf("report colds %d, runtime %d", rep.Total.Actual.ColdStarts, st.ColdStarts)
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	api, _ := newAttributedAPI(t)

	// Missing/unknown metric.
	for _, q := range []string{"", "?metric=bogus"} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries"+q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET /timeseries%s = %d, want 400", q, rec.Code)
		}
	}
	// Bad window and bad resolution.
	for _, q := range []string{"?metric=invocations&window=0", "?metric=invocations&res=day"} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries"+q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET /timeseries%s = %d, want 400", q, rec.Code)
		}
	}
	// Every advertised metric serves a valid series.
	for _, name := range attribution.MetricNames() {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries?metric="+name+"&window=30", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /timeseries?metric=%s = %d: %s", name, rec.Code, rec.Body.String())
		}
		var resp struct {
			Metric     string              `json:"metric"`
			Window     int                 `json:"window"`
			Resolution string              `json:"resolution"`
			Points     []attribution.Point `json:"points"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Metric != name || resp.Window != 30 || resp.Resolution != "minute" {
			t.Errorf("metric %s: response header %+v", name, resp)
		}
		if name == "invocations" && len(resp.Points) == 0 {
			t.Error("invocations series is empty after served traffic")
		}
	}
	// Hourly rollup resolution.
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries?metric=cost_actual_usd&res=hour&window=2", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("hourly timeseries = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestTopEndpoint(t *testing.T) {
	api, _ := newAttributedAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?n=2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /top = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/top content type %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"PULSE cost attribution",
		"vs fixed-high",
		"top savings vs fixed-high",
		"top downgrades",
		"top cold-start risk",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/top output lacks %q:\n%s", want, body)
		}
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?n=zap", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("GET /top?n=zap = %d, want 400", rec.Code)
	}
}

// Every route in Endpoints() must actually be served by the mux (no 404),
// and the three attribution routes must flip on when an accountant is
// attached.
func TestEndpointsTableMatchesMux(t *testing.T) {
	api, _ := newAttributedAPI(t)
	api.AttachStream(alert.NewBroadcaster()) // /stream and /dashboard require it
	seen := map[string]bool{}
	for _, ep := range Endpoints() {
		key := ep.Method + " " + ep.Path
		if seen[key] {
			t.Errorf("duplicate endpoint %s", key)
		}
		seen[key] = true
		target := ep.Path
		var body io.Reader
		switch {
		case ep.Path == "/invoke":
			target += "?fn=0"
		case ep.Path == "/timeseries":
			target += "?metric=invocations"
		case ep.Method == http.MethodPost && ep.Path == "/functions":
			body = strings.NewReader(`{"name":"table-test-fn","family":0}`)
		case ep.Path == "/functions/{name}":
			target = "/functions/table-test-fn" // registered by the POST row above
		}
		req := httptest.NewRequest(ep.Method, target, body)
		if ep.Path == "/stream" {
			// The SSE handler streams until the client goes away; a
			// pre-canceled context makes it return after the handshake.
			ctx, cancel := context.WithCancel(req.Context())
			cancel()
			req = req.WithContext(ctx)
		}
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		gated := map[string]bool{"/events": true, "/decisions": true, "/why": true, "/traces": true}
		if rec.Code == http.StatusNotFound && !gated[ep.Path] {
			t.Errorf("%s %s = 404: endpoint listed but not served", ep.Method, ep.Path)
		}
		if rec.Code == http.StatusMethodNotAllowed {
			t.Errorf("%s %s = 405: Endpoints() advertises the wrong method", ep.Method, ep.Path)
		}
	}
	// /events and /decisions require telemetry; with it attached they
	// serve too, so the full table is reachable.
	cat, asg := testSetup(t)
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Observer: tel})
	if err != nil {
		t.Fatal(err)
	}
	tapi, err := NewInstrumentedAPI(rt, tel)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/events", "/decisions"} {
		rec := httptest.NewRecorder()
		tapi.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s with telemetry = %d, want 200", path, rec.Code)
		}
	}
	// Likewise /why and /traces: gated on their pipelines, served once the
	// recorder and tracer are attached.
	prov, err := provenance.NewRecorder(provenance.RecorderConfig{
		Catalog: cat, Assignment: asg, Names: identity.DefaultNames(len(asg)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tapi.AttachProvenance(prov)
	tapi.AttachTracer(provenance.NewTracer(provenance.TracerConfig{}))
	for _, target := range []string{"/why?fn=fn-0", "/traces"} {
		rec := httptest.NewRecorder()
		tapi.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s with provenance attached = %d, want 200", target, rec.Code)
		}
	}
}
