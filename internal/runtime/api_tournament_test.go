package runtime

// HTTP surface of the policy tournament: /top?by=policy standings,
// savings_vs_<entrant>_usd timeseries, the /attribution tournament
// section, and entrant discovery through /healthz.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
)

// newTournamentAPI is newAttributedAPI with the packaged entrant roster
// riding the accountant: six entrants (three baselines + mpc, hawkes,
// qlearn) race the live policy.
func newTournamentAPI(t *testing.T) (*API, *Runtime) {
	t.Helper()
	cat, asg := testSetup(t)
	ents, err := roster.Build(roster.Names(), cat, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	acct, err := attribution.New(attribution.Config{Catalog: cat, Assignment: asg, Entrants: ents})
	if err != nil {
		t.Fatal(err)
	}
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Catalog: cat, Assignment: asg, Policy: p,
		Clock: NewManualClock(time.Unix(0, 0)), Observer: acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	api, err := NewAPI(rt)
	if err != nil {
		t.Fatal(err)
	}
	api.AttachAttribution(acct)
	for m := 0; m < 15; m++ {
		if m%3 == 0 {
			for fn := 0; fn < rt.NumFunctions(); fn++ {
				if _, err := rt.Invoke(fn); err != nil {
					t.Fatal(err)
				}
			}
		}
		rt.Step()
	}
	return api, rt
}

func TestTopPolicyStandings(t *testing.T) {
	api, _ := newTournamentAPI(t)

	// Text rendering: every entrant plus the live policy appears.
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?by=policy", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /top?by=policy = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/top?by=policy content type %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range append([]string{"PULSE policy tournament", "live", "fixed-high", "never", "oracle"}, roster.Names()...) {
		if !strings.Contains(body, want) {
			t.Errorf("/top?by=policy output lacks %q:\n%s", want, body)
		}
	}

	// JSON rendering: the same rows, ranked by cost ascending, exactly one
	// live row with a zero delta.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?by=policy&format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /top?by=policy&format=json = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Minute  int `json:"minute"`
		Ranking []struct {
			Name          string  `json:"name"`
			Live          bool    `json:"live"`
			CostUSD       float64 `json:"costUSD"`
			ColdStarts    int     `json:"coldStarts"`
			CostVsLiveUSD float64 `json:"costVsLiveUSD"`
		} `json:"ranking"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Ranking) != 7 { // live + 6 entrants
		t.Fatalf("policy ranking has %d rows, want 7: %+v", len(resp.Ranking), resp.Ranking)
	}
	if !sort.SliceIsSorted(resp.Ranking, func(i, j int) bool {
		return resp.Ranking[i].CostUSD < resp.Ranking[j].CostUSD
	}) {
		t.Errorf("policy ranking not sorted by cost ascending: %+v", resp.Ranking)
	}
	lives := 0
	for _, row := range resp.Ranking {
		if row.Live {
			lives++
			if row.CostVsLiveUSD != 0 {
				t.Errorf("live row has nonzero cost delta %v", row.CostVsLiveUSD)
			}
		}
	}
	if lives != 1 {
		t.Errorf("policy ranking has %d live rows, want 1", lives)
	}

	// Unknown by= is a 400 naming the supported views.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?by=flavor", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("GET /top?by=flavor = %d, want 400", rec.Code)
	}
	if b := rec.Body.String(); !strings.Contains(b, "functions or policy") {
		t.Errorf("bad-by error %q does not name the supported views", b)
	}
}

func TestTimeseriesEntrantSavings(t *testing.T) {
	api, _ := newTournamentAPI(t)
	for _, name := range roster.Names() {
		metric := "savings_vs_" + name + "_usd"
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries?metric="+metric+"&window=30", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /timeseries?metric=%s = %d: %s", metric, rec.Code, rec.Body.String())
		}
		var resp struct {
			Metric string `json:"metric"`
			Points []struct {
				Minute int     `json:"minute"`
				Value  float64 `json:"value"`
			} `json:"points"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Metric != metric {
			t.Errorf("metric echoed as %q, want %q", resp.Metric, metric)
		}
		if len(resp.Points) == 0 {
			t.Errorf("%s series empty after served traffic", metric)
		}
	}
	// Hourly rollup works for entrant metrics too.
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries?metric=savings_vs_mpc_usd&res=hour&window=2", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("hourly entrant series = %d: %s", rec.Code, rec.Body.String())
	}
	// An unknown entrant in the pattern is a 400 that lists the attached
	// entrants so the caller can self-correct.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/timeseries?metric=savings_vs_bogus_usd", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown entrant metric = %d, want 400", rec.Code)
	}
	if b := rec.Body.String(); !strings.Contains(b, "savings_vs_{entrant}_usd") || !strings.Contains(b, "mpc") {
		t.Errorf("unknown-metric error %q does not advertise the entrant pattern", b)
	}
}

func TestAttributionTournamentSection(t *testing.T) {
	// With extras attached, /attribution gains the tournament section in
	// accounting order.
	api, _ := newTournamentAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/attribution", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /attribution = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Minute     int `json:"minute"`
		Tournament *struct {
			Entrants []struct {
				Name  string `json:"name"`
				Total struct {
					Invocations int `json:"invocations"`
				} `json:"total"`
			} `json:"entrants"`
		} `json:"tournament"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tournament == nil {
		t.Fatal("/attribution has no tournament section with entrants attached")
	}
	want := append([]string{attribution.BaselineFixedHigh, attribution.BaselineNever, attribution.BaselineOracle}, roster.Names()...)
	if len(resp.Tournament.Entrants) != len(want) {
		t.Fatalf("tournament section has %d entrants, want %d", len(resp.Tournament.Entrants), len(want))
	}
	for i, e := range resp.Tournament.Entrants {
		if e.Name != want[i] {
			t.Errorf("tournament entrant %d = %q, want %q", i, e.Name, want[i])
		}
	}

	// The classic accountant — baselines only — keeps the classic payload.
	plain, _ := newAttributedAPI(t)
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/attribution", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /attribution (plain) = %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), `"tournament"`) {
		t.Error("baseline-only /attribution grew a tournament section")
	}
}

func TestHealthzTournamentEntrants(t *testing.T) {
	api, _ := newTournamentAPI(t)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rec.Code)
	}
	var resp struct {
		TournamentEntrants []string `json:"tournamentEntrants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := append([]string{attribution.BaselineFixedHigh, attribution.BaselineNever, attribution.BaselineOracle}, roster.Names()...)
	if len(resp.TournamentEntrants) != len(want) {
		t.Fatalf("healthz entrants %v, want %v", resp.TournamentEntrants, want)
	}
	for i, name := range resp.TournamentEntrants {
		if name != want[i] {
			t.Errorf("healthz entrant %d = %q, want %q", i, name, want[i])
		}
	}
	// Without attribution the field is omitted entirely.
	plain, _ := newTestAPI(t)
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if strings.Contains(rec.Body.String(), "tournamentEntrants") {
		t.Error("healthz advertises tournament entrants without attribution")
	}
}
