package runtime

import (
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// The simulated engine and the live runtime must produce identical
// attribution from the same trace: one accountant observes a cluster.Run,
// another observes a Runtime replaying the same invocations minute by
// minute, and the two reports (and every time series) must be deeply
// equal. This is the acceptance criterion that offline (sim) and online
// (pulsed) savings numbers agree by construction — both feeds reduce to
// the same integer counters, and all pricing happens at Report() in a
// fixed order.
func TestRoundTripSimVersusLiveRuntime(t *testing.T) {
	cat := models.PaperCatalog()
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 7, Horizon: 6 * 60})
	if err != nil {
		t.Fatal(err)
	}
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	cost := cluster.DefaultCostModel()
	newAcct := func() *attribution.Accountant {
		a, err := attribution.New(attribution.Config{Catalog: cat, Assignment: asg, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	policies := map[string]func() (cluster.Policy, error){
		"pulse": func() (cluster.Policy, error) {
			return core.New(core.Config{Catalog: cat, Assignment: asg})
		},
		"fixed-high": func() (cluster.Policy, error) {
			return policy.NewFixed(cat, asg, cluster.DefaultKeepAliveWindow, policy.QualityHighest)
		},
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			// Offline: the cluster engine drives the whole trace.
			simAcct := newAcct()
			p, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cluster.Run(cluster.Config{
				Trace: tr, Catalog: cat, Assignment: asg, Cost: cost, Observer: simAcct,
			}, p); err != nil {
				t.Fatal(err)
			}

			// Online: a live runtime replays the identical invocation feed.
			// The trace has minutes 0..h-1; h-1 Steps leave minute h-1 open,
			// exactly like the engine, so both accountants finish with the
			// same open minute.
			liveAcct := newAcct()
			lp, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			rt, err := New(Config{
				Catalog:    cat,
				Assignment: asg,
				Policy:     lp,
				Clock:      &ManualClock{},
				Cost:       cost,
				Observer:   liveAcct,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			for m := 0; m < tr.Horizon; m++ {
				for fn := range tr.Functions {
					for i := 0; i < tr.Functions[fn].Counts[m]; i++ {
						if _, err := rt.Invoke(fn); err != nil {
							t.Fatal(err)
						}
					}
				}
				if m < tr.Horizon-1 {
					rt.Step()
				}
			}

			simRep, liveRep := simAcct.Report(), liveAcct.Report()
			if !reflect.DeepEqual(simRep, liveRep) {
				t.Errorf("sim and live attribution diverged\nsim total:  %+v\nlive total: %+v",
					simRep.Total, liveRep.Total)
			}
			for _, name := range attribution.MetricNames() {
				m, err := attribution.ParseMetric(name)
				if err != nil {
					t.Fatal(err)
				}
				sSim := simAcct.Series(m, tr.Horizon, false)
				sLive := liveAcct.Series(m, tr.Horizon, false)
				if !reflect.DeepEqual(sSim, sLive) {
					t.Errorf("series %s diverged between sim and live", name)
				}
			}
		})
	}
}
