package runtime

// The differential equivalence harness is the proof obligation behind the
// serving path: for a matrix of trace workloads and policies, a serial
// (single global lock) runtime replayed sequentially, a striped runtime
// replayed with one goroutine per function, and an epoch (lock-free fast
// path) runtime replayed the same way must produce identical Stats and
// identical per-function invocation streams — and, when instrumented,
// identical barrier-ordered observer streams. CI runs this suite under
// -race (the sharded job's 'Differential|Sharded' regex picks it up, and
// the stress job repeats it at GOMAXPROCS 1 and 4).

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// runtimeWorkload is one trace of the equivalence matrix.
type runtimeWorkload struct {
	name string
	tr   *trace.Trace
}

// runtimeWorkloads builds the trace matrix: the default Azure-like mix, a
// bursty/sporadic mix scaled to 24 functions, and a trace round-tripped
// through the Azure Functions CSV format — the same three shapes the
// sharded-controller harness proves equivalence on.
func runtimeWorkloads(t testing.TB) []runtimeWorkload {
	t.Helper()
	azureLike, err := trace.Generate(trace.GeneratorConfig{Seed: 7, Horizon: 6 * 60})
	if err != nil {
		t.Fatal(err)
	}

	var scaled []trace.Archetype
	for i := 0; i < 4; i++ {
		scaled = append(scaled,
			trace.Bursty{BurstsPerDay: 12, BurstLen: 7, BurstRate: 4, QuietRate: 0.05},
			trace.Sporadic{MeanGap: 37},
			trace.Periodic{Period: 11, Jitter: 2},
			trace.Poisson{Rate: 0.4},
			trace.HeavyTailed{Alpha: 1.6, Scale: 13},
			trace.Diurnal{Base: 0.02, Amplitude: 1.2, PeakMinute: 120},
		)
	}
	burstySporadic, err := trace.Generate(trace.GeneratorConfig{Seed: 11, Horizon: 4 * 60, Archetypes: scaled})
	if err != nil {
		t.Fatal(err)
	}

	// The CSV day-file format requires whole days.
	seed, err := trace.Generate(trace.GeneratorConfig{Seed: 23, Horizon: trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	var day bytes.Buffer
	if err := trace.WriteAzureCSV(seed, &day); err != nil {
		t.Fatal(err)
	}
	azureCSV, err := trace.ReadAzureCSV(trace.AzureReadOptions{}, bytes.NewReader(day.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	return []runtimeWorkload{
		{name: "azure-like-6h", tr: azureLike},
		{name: "bursty-sporadic-24fn", tr: burstySporadic},
		{name: "azure-csv-derived", tr: azureCSV},
	}
}

// runtimePolicies returns fresh-policy constructors: every runtime under
// comparison needs its own policy instance (the runtime owns it).
func runtimePolicies(cat *models.Catalog, asg models.Assignment) map[string]func(t testing.TB, obs telemetry.Observer) cluster.Policy {
	return map[string]func(t testing.TB, obs telemetry.Observer) cluster.Policy{
		"pulse": func(t testing.TB, obs telemetry.Observer) cluster.Policy {
			p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Observer: obs})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"pulse-sharded": func(t testing.TB, obs telemetry.Observer) cluster.Policy {
			p, err := core.New(core.Config{Catalog: cat, Assignment: asg, Observer: obs, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"fixed": func(t testing.TB, obs telemetry.Observer) cluster.Policy {
			p, err := policy.NewFixed(cat, asg, 0, policy.QualityHighest)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
}

// replayCapture replays a trace and records every invocation outcome,
// grouped per function. Sequential mode issues invocations in trace order;
// parallel mode issues each minute's invocations from one goroutine per
// function (each goroutine appends only to its own function's stream, so
// the capture itself is race-free).
func replayCapture(t *testing.T, r *Runtime, tr *trace.Trace, parallel bool) (Stats, [][]Invocation) {
	t.Helper()
	streams := make([][]Invocation, len(tr.Functions))
	for tm := 0; tm < tr.Horizon; tm++ {
		if parallel {
			var wg sync.WaitGroup
			for fn := range tr.Functions {
				n := tr.Functions[fn].Counts[tm]
				if n == 0 {
					continue
				}
				wg.Add(1)
				go func(fn, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						inv, err := r.Invoke(fn)
						if err != nil {
							t.Error(err)
							return
						}
						streams[fn] = append(streams[fn], inv)
					}
				}(fn, n)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
		} else {
			for fn := range tr.Functions {
				for i := 0; i < tr.Functions[fn].Counts[tm]; i++ {
					inv, err := r.Invoke(fn)
					if err != nil {
						t.Fatal(err)
					}
					streams[fn] = append(streams[fn], inv)
				}
			}
		}
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return r.Stats(), streams
}

// TestDifferentialRuntimeModes drives a serial runtime sequentially and a
// striped and an epoch runtime with per-function goroutines over the same
// workloads and policies, requiring reflect.DeepEqual on the final Stats
// (float sums included — every mode accumulates per function, in function
// order) and on every per-function invocation stream. Run under -race,
// this three-way comparison is the serving path's equivalence proof: the
// serial mode is the ground truth, and the lock-free epoch mode must match
// it as exactly as the striped mode always has.
func TestDifferentialRuntimeModes(t *testing.T) {
	cat := models.PaperCatalog()
	for _, wl := range runtimeWorkloads(t) {
		asg := make(models.Assignment, len(wl.tr.Functions))
		for i := range asg {
			asg[i] = i % len(cat.Families)
		}
		for polName, mkPolicy := range runtimePolicies(cat, asg) {
			t.Run(fmt.Sprintf("%s/%s", wl.name, polName), func(t *testing.T) {
				mk := func(mode string) *Runtime {
					r, err := New(Config{
						Catalog:    cat,
						Assignment: asg,
						Policy:     mkPolicy(t, nil),
						Clock:      NewManualClock(time.Unix(0, 0)),
						Mode:       mode,
					})
					if err != nil {
						t.Fatal(err)
					}
					if r.Mode() != mode {
						t.Fatalf("mode = %q, want %q", r.Mode(), mode)
					}
					return r
				}
				serial := mk(ModeSerial)
				defer serial.Close()
				serialStats, serialStreams := replayCapture(t, serial, wl.tr, false)

				for _, mode := range []string{ModeStriped, ModeEpoch} {
					r := mk(mode)
					stats, streams := replayCapture(t, r, wl.tr, true)
					r.Close()
					if !reflect.DeepEqual(serialStats, stats) {
						t.Errorf("%s stats diverge:\nserial: %+v\n%s: %+v", mode, serialStats, mode, stats)
					}
					for fn := range serialStreams {
						if !reflect.DeepEqual(serialStreams[fn], streams[fn]) {
							t.Errorf("%s: function %d invocation stream diverges (%d vs %d invocations)",
								mode, fn, len(serialStreams[fn]), len(streams[fn]))
						}
					}
				}
			})
		}
	}
}

// TestDifferentialObserverStream attaches Recorders to replays in every
// mode and checks the observer seam's ordering guarantees: keep-alive and
// minute samples are emitted inside the minute write window and must
// arrive in the identical order with identical payloads in every mode;
// invocation samples may interleave across functions under parallel
// replay, but a stable sort by (minute, function) — which preserves each
// function's own emission order — must reconstruct the exact serial
// stream. Sequential replays (no goroutines) must reproduce the serial
// invocation stream exactly, unsorted, in the striped and epoch modes
// alike.
func TestDifferentialObserverStream(t *testing.T) {
	cat := models.PaperCatalog()
	wl := runtimeWorkloads(t)[0]
	asg := make(models.Assignment, len(wl.tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	run := func(mode string, parallel bool) *telemetry.Recorder {
		rec := &telemetry.Recorder{}
		p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Catalog:    cat,
			Assignment: asg,
			Policy:     p,
			Clock:      NewManualClock(time.Unix(0, 0)),
			Observer:   rec,
			Mode:       mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		replayCapture(t, r, wl.tr, parallel)
		return rec
	}
	canon := func(s []telemetry.InvocationSample) []telemetry.InvocationSample {
		out := append([]telemetry.InvocationSample(nil), s...)
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].Minute != out[j].Minute {
				return out[i].Minute < out[j].Minute
			}
			return out[i].Function < out[j].Function
		})
		return out
	}

	serial := run(ModeSerial, false)
	for _, cmp := range []struct {
		name     string
		mode     string
		parallel bool
	}{
		{"striped-parallel", ModeStriped, true},
		{"epoch-parallel", ModeEpoch, true},
		{"striped-sequential", ModeStriped, false},
		{"epoch-sequential", ModeEpoch, false},
	} {
		got := run(cmp.mode, cmp.parallel)
		if !reflect.DeepEqual(serial.KeepAlives, got.KeepAlives) {
			t.Errorf("%s: keep-alive streams diverge: %d vs %d samples", cmp.name, len(serial.KeepAlives), len(got.KeepAlives))
		}
		if !reflect.DeepEqual(serial.Minutes, got.Minutes) {
			t.Errorf("%s: minute streams diverge: %d vs %d samples", cmp.name, len(serial.Minutes), len(got.Minutes))
		}
		if cmp.parallel {
			if !reflect.DeepEqual(canon(serial.Invocations), canon(got.Invocations)) {
				t.Errorf("%s: invocation sample streams diverge under canonical order: %d vs %d samples",
					cmp.name, len(serial.Invocations), len(got.Invocations))
			}
		} else if !reflect.DeepEqual(serial.Invocations, got.Invocations) {
			t.Errorf("%s: invocation sample streams diverge: %d vs %d samples",
				cmp.name, len(serial.Invocations), len(got.Invocations))
		}
	}
}

// TestDifferentialReplayDrivers cross-checks the exported drivers the
// harness builds on: ReplayTrace and ReplayTraceParallel over the same
// trace and policy must land on identical Stats.
func TestDifferentialReplayDrivers(t *testing.T) {
	cat := models.PaperCatalog()
	wl := runtimeWorkloads(t)[2]
	asg := make(models.Assignment, len(wl.tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	run := func(parallel bool) Stats {
		p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0))})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		drive := ReplayTrace
		if parallel {
			drive = ReplayTraceParallel
		}
		if err := drive(context.Background(), r, wl.tr); err != nil {
			t.Fatal(err)
		}
		return r.Stats()
	}
	sequential := run(false)
	parallel := run(true)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("driver stats diverge:\nsequential: %+v\nparallel:   %+v", sequential, parallel)
	}
}
