package runtime

import (
	"sync"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
)

// countingPolicy wraps a policy and sums every invocation count reported to
// RecordInvocations. The runtime serializes RecordInvocations inside Step's
// write window, so a plain int is safe; it is read only after all
// goroutines join.
type countingPolicy struct {
	cluster.Policy
	total int
}

func (p *countingPolicy) RecordInvocations(t int, counts []int) {
	for _, c := range counts {
		p.total += c
	}
	p.Policy.RecordInvocations(t, counts)
}

// TestEpochInvocationConservation is the conservation law for the lock-free
// serving path: under concurrent invokers racing a concurrent stepper,
// every successful invocation must be counted exactly once, everywhere.
// Four ledgers have to agree to the invocation:
//
//	workers' own success count
//	  == Stats().Invocations (per-stripe accumulators)
//	  == sum of counts the policy saw via RecordInvocations (minute harvest)
//	  == sum over minutes of the accountant's invocations series (MetricAt)
//
// The last equality additionally pins "no invocation lands in more than one
// minute": an invocation double-counted across a rollover would inflate the
// per-minute sum above the stripe total. Run under -race by the stress job.
func TestEpochInvocationConservation(t *testing.T) {
	cat, asg := testSetup(t)
	cost := cluster.DefaultCostModel()
	acct, err := attribution.New(attribution.Config{Catalog: cat, Assignment: asg, Cost: cost})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	pol := &countingPolicy{Policy: base}
	r, err := New(Config{
		Catalog:    cat,
		Assignment: asg,
		Policy:     pol,
		Clock:      NewManualClock(time.Unix(0, 0)),
		Cost:       cost,
		Observer:   acct,
		Mode:       ModeEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	perWorker := 20000
	if testing.Short() {
		perWorker = 2000
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := w % len(asg)
			for i := 0; i < perWorker; i++ {
				if _, err := r.Invoke(fn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// The stepper races minute rollovers against the invokers but stays
	// well inside the accountant's series window (1440 minutes), so every
	// minute's count is still retrievable afterwards.
	stop := make(chan struct{})
	var stepperWG sync.WaitGroup
	stepperWG.Add(1)
	go func() {
		defer stepperWG.Done()
		for i := 0; i < 1200; i++ {
			select {
			case <-stop:
				return
			default:
				if err := r.Step(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	stepperWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// One final rollover flushes the open minute's counts to the policy and
	// the accountant, then everything is quiescent.
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}

	want := workers * perWorker
	if got := r.Stats().Invocations; got != want {
		t.Errorf("Stats().Invocations = %d, workers succeeded %d times", got, want)
	}
	if pol.total != want {
		t.Errorf("policy saw %d invocations via RecordInvocations, want %d", pol.total, want)
	}
	var series float64
	for m := 0; m <= r.Minute(); m++ {
		v, ok := acct.MetricAt(attribution.MetricInvocations, m)
		if !ok {
			t.Fatalf("accountant has no invocations sample for minute %d", m)
		}
		series += v
	}
	if int(series) != want {
		t.Errorf("sum of per-minute attribution series = %v, want %d (an invocation left or entered a second minute)", series, want)
	}
	if r.Minute() < 2 {
		t.Errorf("stepper only reached minute %d: the rollover race was not exercised", r.Minute())
	}
}
