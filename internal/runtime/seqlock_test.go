package runtime

import (
	"errors"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/models"
)

// parityPolicy pins the keep-alive decision to the minute itself: at minute
// t every function keeps alive variant t mod its family's variant count,
// and cold starts (which never happen here, but symmetry is cheap) pick the
// same one. That turns (minute, alive variant) into a matched pair written
// together inside Step's write window: an invocation that observes minute m
// MUST carry the variant m selects, so any torn read across the minute
// barrier — new minute with the old variant or vice versa — is immediately
// visible in the invocation it produced.
type parityPolicy struct {
	cat *models.Catalog
	asg models.Assignment
	buf []int
}

func (p *parityPolicy) Name() string { return "minute-parity" }

func (p *parityPolicy) KeepAlive(t int) []int {
	if p.buf == nil {
		p.buf = make([]int, len(p.asg))
	}
	for fn, fam := range p.asg {
		p.buf[fn] = t % p.cat.Families[fam].NumVariants()
	}
	return p.buf
}

func (p *parityPolicy) ColdVariant(t, fn int) int {
	return t % p.cat.Families[p.asg[fn]].NumVariants()
}

func (p *parityPolicy) RecordInvocations(t int, counts []int) {}

// TestSeqlockTornReadDetector is the torn-read canary for the epoch mode's
// seqlock protocol. Step writes the minute stamp and every stripe's alive
// variant as a matched pair inside one write window; the parity policy
// makes the pair self-checking (variant name is a function of the minute).
// Concurrent invokers then hammer the lock-free fast path while a stepper
// flips minutes as fast as it can: if the seqlock re-check ever let a body
// straddle a window, the invocation would pair a minute with the previous
// minute's variant and fail loudly here. Each goroutine also asserts its
// observed minutes never go backwards. Run at GOMAXPROCS>=4 so readers and
// the stepper genuinely interleave.
func TestSeqlockTornReadDetector(t *testing.T) {
	if prev := goruntime.GOMAXPROCS(0); prev < 4 {
		goruntime.GOMAXPROCS(4)
		defer goruntime.GOMAXPROCS(prev)
	}
	cat, asg := testSetup(t)
	pol := &parityPolicy{cat: cat, asg: asg}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: pol, Clock: NewManualClock(time.Unix(0, 0)), Mode: ModeEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	duration := 400 * time.Millisecond
	if testing.Short() {
		duration = 50 * time.Millisecond
	}
	deadline := time.Now().Add(duration)

	const readers = 4
	var wg sync.WaitGroup
	var total int64
	var totalMu sync.Mutex
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fn := g % len(asg)
			fam := cat.Families[asg[fn]]
			n := fam.NumVariants()
			lastMinute := -1
			var iters int64
			for i := 0; ; i++ {
				// Check the clock every so often, not every iteration.
				if i&1023 == 0 && time.Now().After(deadline) {
					break
				}
				inv, err := r.Invoke(fn)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				iters++
				if want := fam.Variants[inv.Minute%n].Name; inv.Variant != want {
					t.Errorf("torn read: minute %d served variant %q, want %q (pair written by Step was split)",
						inv.Minute, inv.Variant, want)
					return
				}
				if inv.Minute < lastMinute {
					t.Errorf("reader %d: minute went backwards %d -> %d", g, lastMinute, inv.Minute)
					return
				}
				lastMinute = inv.Minute
			}
			totalMu.Lock()
			total += iters
			totalMu.Unlock()
		}(g)
	}
	// The stepper flips the minute as fast as the write window allows,
	// maximizing the number of invocations that race a rollover.
	stop := make(chan struct{})
	var stepperWG sync.WaitGroup
	stepperWG.Add(1)
	go func() {
		defer stepperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.Step(); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Error(err)
					}
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	stepperWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if total == 0 {
		t.Fatal("detector ran zero iterations")
	}
	if r.Minute() == 0 {
		t.Fatal("stepper never advanced a minute: nothing raced the rollover")
	}
	t.Logf("clean: %d invocations across %d minute rollovers", total, r.Minute())
}

// TestEpochInvokeZeroAllocs pins the epoch fast path at zero heap
// allocations per warm invocation: the retry loop, the stripe lookup, and
// the invocation body must all stay on the stack, or throughput quietly
// decays into the allocator. Run by the CI alloc job.
func TestEpochInvokeZeroAllocs(t *testing.T) {
	cat, asg := testSetup(t)
	pol := &parityPolicy{cat: cat, asg: asg}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: pol, Clock: NewManualClock(time.Unix(0, 0)), Mode: ModeEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Invoke(0); err != nil { // warm the path, trigger ensureStarted
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, err := r.Invoke(0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("epoch Invoke fast path allocates %v times per call, want 0", allocs)
	}
}
