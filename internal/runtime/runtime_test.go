package runtime

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func testSetup(t *testing.T) (*models.Catalog, models.Assignment) {
	t.Helper()
	cat := models.PaperCatalog()
	return cat, models.Assignment{0, 1, 2}
}

func newFixedRuntime(t *testing.T, cat *models.Catalog, asg models.Assignment) *Runtime {
	t.Helper()
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	cat, asg := testSetup(t)
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Catalog: cat, Assignment: asg}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(Config{Policy: p, Assignment: asg}); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := New(Config{Policy: p, Catalog: cat}); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := New(Config{Policy: p, Catalog: cat, Assignment: asg, ExecScale: -1}); err == nil {
		t.Error("negative exec scale accepted")
	}
}

func TestColdThenWarmWithinMinute(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)

	inv, err := r.Invoke(0)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Cold {
		t.Error("first invocation should be cold")
	}
	gpt := cat.Families[0]
	if inv.Variant != gpt.Highest().Name {
		t.Errorf("cold variant = %q, want highest", inv.Variant)
	}
	if inv.ServiceSec != gpt.Highest().ColdServiceSec() {
		t.Errorf("cold service = %v, want %v", inv.ServiceSec, gpt.Highest().ColdServiceSec())
	}
	// Second invocation in the same minute reuses the cold-started pod.
	inv2, err := r.Invoke(0)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Cold {
		t.Error("second invocation in the minute should be warm")
	}
	if inv2.ServiceSec != gpt.Highest().ExecSec {
		t.Errorf("warm service = %v, want exec only", inv2.ServiceSec)
	}
}

func TestKeepAliveAcrossMinutes(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	if _, err := r.Invoke(0); err != nil {
		t.Fatal(err)
	}
	r.Step() // minute 1: fixed policy keeps function 0 alive
	if v, err := r.AliveVariant(0); err != nil || v != cat.Families[0].NumVariants()-1 {
		t.Errorf("alive variant = %d, %v; want highest", v, err)
	}
	inv, err := r.Invoke(0)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Cold {
		t.Error("invocation within keep-alive window should be warm")
	}
	if inv.Minute != 1 {
		t.Errorf("minute = %d, want 1", inv.Minute)
	}
	// Function 1 was never invoked: nothing alive.
	if v, err := r.AliveVariant(1); err != nil || v != cluster.NoVariant {
		t.Errorf("idle function alive variant = %d, %v", v, err)
	}
	// 11 quiet minutes later the window has lapsed.
	for i := 0; i < 11; i++ {
		r.Step()
	}
	inv, err = r.Invoke(0)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Cold {
		t.Error("invocation after window lapse should be cold")
	}
}

func TestInvokeErrors(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	if _, err := r.Invoke(-1); err == nil {
		t.Error("negative function accepted")
	}
	if _, err := r.Invoke(99); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := r.AliveVariant(99); err == nil {
		t.Error("unknown function alive query accepted")
	}
	if _, err := r.FamilyOf(99); err == nil {
		t.Error("unknown function family query accepted")
	}
	fam, err := r.FamilyOf(1)
	if err != nil || fam.Name != cat.Families[1].Name {
		t.Errorf("FamilyOf = %v, %v", fam.Name, err)
	}
	if r.NumFunctions() != 3 {
		t.Errorf("NumFunctions = %d", r.NumFunctions())
	}
}

func TestStatsAccumulate(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	if _, err := r.Invoke(0); err != nil {
		t.Fatal(err)
	}
	r.Step()
	if _, err := r.Invoke(0); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Invocations != 2 || s.ColdStarts != 1 || s.WarmStarts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Minute != 1 {
		t.Errorf("minute = %d", s.Minute)
	}
	if s.KeepAliveCostUSD <= 0 {
		t.Error("keep-alive cost not accumulating")
	}
	if s.CurrentKaMMB != cat.Families[0].Highest().MemoryMB {
		t.Errorf("current KaM = %v", s.CurrentKaMMB)
	}
	if s.MeanAccuracyPct() <= 0 {
		t.Error("accuracy not accumulating")
	}
	if (Stats{}).MeanAccuracyPct() != 0 {
		t.Error("empty stats accuracy should be 0")
	}
}

func TestExecScaleSleeps(t *testing.T) {
	cat, asg := testSetup(t)
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewManualClock(time.Unix(0, 0))
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: clock, ExecScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := r.Invoke(0)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(inv.ServiceSec * float64(time.Second))
	if got := clock.Now().Sub(time.Unix(0, 0)); got != want {
		t.Errorf("clock advanced %v, want %v", got, want)
	}
}

// The live runtime and the offline simulator must agree: replaying the same
// trace through both with the same (deterministic) policy yields identical
// warm/cold/service/accuracy accounting.
func TestReplayMatchesOfflineSimulator(t *testing.T) {
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 15, Horizon: 6 * 60})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}

	// Offline.
	pOff, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := cluster.Run(cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}, pOff)
	if err != nil {
		t.Fatal(err)
	}

	// Live replay.
	pLive, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: pLive, Clock: NewManualClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayTrace(context.Background(), r, tr); err != nil {
		t.Fatal(err)
	}
	live := r.Stats()

	if live.Invocations != offline.Invocations {
		t.Errorf("invocations: live %d vs offline %d", live.Invocations, offline.Invocations)
	}
	if live.WarmStarts != offline.WarmStarts || live.ColdStarts != offline.ColdStarts {
		t.Errorf("starts: live %d/%d vs offline %d/%d",
			live.WarmStarts, live.ColdStarts, offline.WarmStarts, offline.ColdStarts)
	}
	// The engine multiplies per-minute counts while the runtime adds per
	// invocation, so sums agree only up to float association order.
	if math.Abs(live.TotalServiceSec-offline.TotalServiceSec) > 1e-6 {
		t.Errorf("service: live %v vs offline %v", live.TotalServiceSec, offline.TotalServiceSec)
	}
	if math.Abs(live.AccuracySumPct-offline.AccuracySumPct) > 1e-6 {
		t.Errorf("accuracy sum: live %v vs offline %v", live.AccuracySumPct, offline.AccuracySumPct)
	}
	// The replay charges one extra minute (the Step after the final trace
	// minute opens minute `horizon`); costs otherwise match.
	if live.KeepAliveCostUSD < offline.KeepAliveCostUSD {
		t.Errorf("live cost %v below offline %v", live.KeepAliveCostUSD, offline.KeepAliveCostUSD)
	}
	maxMinute := cluster.DefaultCostModel().KeepAliveUSDPerMinute(64 * 1024)
	if live.KeepAliveCostUSD-offline.KeepAliveCostUSD > maxMinute {
		t.Errorf("cost gap %v exceeds one minute's worth", live.KeepAliveCostUSD-offline.KeepAliveCostUSD)
	}
}

func TestReplayValidation(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	ctx := context.Background()
	if err := ReplayTrace(ctx, nil, &trace.Trace{}); err == nil {
		t.Error("nil runtime accepted")
	}
	if err := ReplayTrace(ctx, r, nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := &trace.Trace{Horizon: 5, Functions: []trace.Function{{ID: 0, Counts: make([]int, 5)}}}
	if err := ReplayTrace(ctx, r, bad); err == nil {
		t.Error("function-count mismatch accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	ok := &trace.Trace{Horizon: 5, Functions: []trace.Function{
		{ID: 0, Counts: make([]int, 5)}, {ID: 1, Counts: make([]int, 5)}, {ID: 2, Counts: make([]int, 5)},
	}}
	if err := ReplayTrace(cancelled, r, ok); err != context.Canceled {
		t.Errorf("cancelled replay err = %v", err)
	}
}

func TestTicker(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	if err := Ticker(context.Background(), nil, time.Millisecond); err == nil {
		t.Error("nil runtime accepted")
	}
	if err := Ticker(context.Background(), r, 0); err == nil {
		t.Error("zero interval accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Ticker(ctx, r, time.Millisecond) }()
	for r.Minute() < 3 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Errorf("ticker err = %v", err)
	}
	if r.Minute() < 3 {
		t.Errorf("ticker advanced only to minute %d", r.Minute())
	}
}

// Concurrency: parallel invocations across functions must not race or lose
// counts (run with -race).
func TestConcurrentInvocations(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	const perFn = 50
	var wg sync.WaitGroup
	for fn := 0; fn < len(asg); fn++ {
		wg.Add(1)
		go func(fn int) {
			defer wg.Done()
			for i := 0; i < perFn; i++ {
				if _, err := r.Invoke(fn); err != nil {
					t.Error(err)
					return
				}
			}
		}(fn)
	}
	// A stepper runs concurrently, advancing minutes.
	stop := make(chan struct{})
	var stepper sync.WaitGroup
	stepper.Add(1)
	go func() {
		defer stepper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Step()
			}
		}
	}()
	wg.Wait()
	close(stop)
	stepper.Wait()
	if got := r.Stats().Invocations; got != perFn*len(asg) {
		t.Errorf("invocations = %d, want %d", got, perFn*len(asg))
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(time.Unix(100, 0))
	if !c.Now().Equal(time.Unix(100, 0)) {
		t.Error("start time wrong")
	}
	c.Sleep(5 * time.Second)
	if !c.Now().Equal(time.Unix(105, 0)) {
		t.Error("sleep did not advance")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance should panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestWallClockCompression(t *testing.T) {
	w := WallClock{Compression: 1000}
	start := time.Now()
	w.Sleep(200 * time.Millisecond) // compressed to 200µs
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("compressed sleep took %v", elapsed)
	}
	if w.Now().IsZero() {
		t.Error("wall clock returned zero time")
	}
}

// TestRuntimeCloseShardedPolicy: the runtime owns its policy, so Close
// must propagate to policies owning resources (the sharded PULSE
// controller's worker pool) and be a no-op for plain policies.
func TestRuntimeCloseShardedPolicy(t *testing.T) {
	cat, asg := testSetup(t)
	ctrl, err := core.New(core.Config{Catalog: cat, Assignment: asg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: ctrl, Clock: NewManualClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(0); err != nil {
		t.Fatal(err)
	}
	r.Step()
	if err := r.Close(); err != nil {
		t.Fatalf("Close with sharded controller: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	fixed := newFixedRuntime(t, cat, asg)
	if err := fixed.Close(); err != nil {
		t.Fatalf("Close with non-closer policy: %v", err)
	}
}

// TestInvokeAfterClose: Close must flip the runtime into a terminal state
// where Invoke and Step return ErrClosed instead of calling into the
// closed policy (the sharded controller's worker pool is gone), while the
// read-only surface stays available for final reporting.
func TestInvokeAfterClose(t *testing.T) {
	cat, asg := testSetup(t)
	ctrl, err := core.New(core.Config{Catalog: cat, Assignment: asg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: ctrl, Clock: NewManualClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Invoke after Close = %v, want ErrClosed", err)
	}
	if err := r.Step(); !errors.Is(err, ErrClosed) {
		t.Errorf("Step after Close = %v, want ErrClosed", err)
	}
	// The read-only surface survives for final reporting.
	if st := r.Stats(); st.Invocations != 1 {
		t.Errorf("Stats after Close = %+v", st)
	}
	if r.Minute() != 1 {
		t.Errorf("Minute after Close = %d", r.Minute())
	}
	if _, err := r.AliveVariant(0); err != nil {
		t.Errorf("AliveVariant after Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestCloseNeverStartedRuntime: closing before any Invoke must not start
// the policy, and a later Invoke must not either.
func TestCloseNeverStartedRuntime(t *testing.T) {
	cat, asg := testSetup(t)
	rec := &telemetry.Recorder{}
	p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Invoke after Close = %v, want ErrClosed", err)
	}
	if len(rec.KeepAlives) != 0 || len(rec.Minutes) != 0 {
		t.Errorf("closed runtime started its policy: %d keep-alive, %d minute samples",
			len(rec.KeepAlives), len(rec.Minutes))
	}
}

// TestInvokeDuringShutdown races invokers against Close (run with -race):
// every invocation must either complete normally or fail with ErrClosed —
// never panic, deadlock, or reach the closed policy — and the counters
// must account for exactly the successes.
func TestInvokeDuringShutdown(t *testing.T) {
	for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) {
			cat, asg := testSetup(t)
			ctrl, err := core.New(core.Config{Catalog: cat, Assignment: asg, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(Config{Catalog: cat, Assignment: asg, Policy: ctrl, Clock: NewManualClock(time.Unix(0, 0)), Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			var successes atomic.Int64
			var wg sync.WaitGroup
			for fn := 0; fn < len(asg); fn++ {
				wg.Add(1)
				go func(fn int) {
					defer wg.Done()
					for {
						_, err := r.Invoke(fn)
						if err == nil {
							successes.Add(1)
							continue
						}
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Invoke during shutdown: %v", err)
						}
						return
					}
				}(fn)
			}
			go func() {
				time.Sleep(2 * time.Millisecond)
				if err := r.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
			wg.Wait()
			if got := int64(r.Stats().Invocations); got != successes.Load() {
				t.Errorf("stats count %d successes, invokers saw %d", got, successes.Load())
			}
		})
	}
}

// TestConcurrentInvokeStepStats hammers Invoke, Step, and Stats from
// concurrent goroutines in all three serving modes (run with -race):
// counters must end exact, and every Stats snapshot must be internally
// consistent (warm + cold = invocations).
func TestConcurrentInvokeStepStats(t *testing.T) {
	for _, mode := range []string{ModeSerial, ModeStriped, ModeEpoch} {
		t.Run(mode, func(t *testing.T) {
			cat, asg := testSetup(t)
			p, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(Config{Catalog: cat, Assignment: asg, Policy: p, Clock: NewManualClock(time.Unix(0, 0)), Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			const perWorker = 200
			workers := 2 * len(asg) // two goroutines per function: stripes contend too
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					fn := w % len(asg)
					for i := 0; i < perWorker; i++ {
						if _, err := r.Invoke(fn); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			stop := make(chan struct{})
			var aux sync.WaitGroup
			aux.Add(2)
			go func() { // stepper
				defer aux.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if err := r.Step(); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
			go func() { // stats reader
				defer aux.Done()
				for {
					select {
					case <-stop:
						return
					default:
						s := r.Stats()
						if s.WarmStarts+s.ColdStarts != s.Invocations {
							t.Errorf("inconsistent snapshot: %+v", s)
							return
						}
					}
				}
			}()
			wg.Wait()
			close(stop)
			aux.Wait()
			if got := r.Stats().Invocations; got != perWorker*workers {
				t.Errorf("invocations = %d, want %d", got, perWorker*workers)
			}
		})
	}
}

// TestReplayTraceParallelValidation mirrors ReplayTrace's precondition
// checks on the parallel driver.
func TestReplayTraceParallelValidation(t *testing.T) {
	cat, asg := testSetup(t)
	r := newFixedRuntime(t, cat, asg)
	ctx := context.Background()
	if err := ReplayTraceParallel(ctx, nil, &trace.Trace{}); err == nil {
		t.Error("nil runtime accepted")
	}
	if err := ReplayTraceParallel(ctx, r, nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := &trace.Trace{Horizon: 5, Functions: []trace.Function{{ID: 0, Counts: make([]int, 5)}}}
	if err := ReplayTraceParallel(ctx, r, bad); err == nil {
		t.Error("function-count mismatch accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	ok := &trace.Trace{Horizon: 2, Functions: []trace.Function{
		{ID: 0, Counts: []int{1, 0}}, {ID: 1, Counts: []int{0, 0}}, {ID: 2, Counts: []int{0, 0}},
	}}
	if err := ReplayTraceParallel(ctx, r, ok); !errors.Is(err, ErrClosed) {
		t.Errorf("replay against closed runtime err = %v, want ErrClosed", err)
	}
}

// TestWallClockSlowMotion: Compression in (0, 1) stretches simulated time
// rather than silently running in real time, and negative values fall back
// to real time as documented.
func TestWallClockSlowMotion(t *testing.T) {
	w := WallClock{Compression: 0.25}
	start := time.Now()
	w.Sleep(2 * time.Millisecond) // stretched to 8ms
	if elapsed := time.Since(start); elapsed < 6*time.Millisecond {
		t.Errorf("slow-motion sleep returned after %v, want ≥ ~8ms", elapsed)
	}

	w = WallClock{Compression: -5} // treated as unset: real time
	start = time.Now()
	w.Sleep(time.Millisecond)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("negative compression slept %v", elapsed)
	}
}
