package runtime

import (
	"net/http"
	goruntime "runtime"
	"time"

	"github.com/pulse-serverless/pulse/internal/alert"
	"github.com/pulse-serverless/pulse/internal/provenance"
)

// AttachStream connects the live-event broadcaster to the API, enabling
// GET /stream and GET /dashboard. The broadcaster should be the same
// instance tapped into the telemetry event log and handed to the alert
// engine, so one stream carries decisions, minute rollups, and alerts.
// Attach before serving; nil leaves both endpoints answering 404.
func (a *API) AttachStream(b *alert.Broadcaster) {
	a.stream = b
}

// AttachAlerts connects the alert engine to the API: /healthz reports its
// status, and invocations of deregistered functions feed its
// dereg_invokes metric. The engine must also be attached as Observer to
// the runtime (via telemetry.Multi, after the attribution accountant) to
// see the minute stream. Attach before serving; nil is valid (alerting
// disabled, /healthz says so).
func (a *API) AttachAlerts(e *alert.Engine) {
	a.alerts = e
}

// handleStream serves the SSE event stream (GET /stream).
func (a *API) handleStream(w http.ResponseWriter, r *http.Request) {
	if a.stream == nil {
		writeJSON(w, http.StatusNotFound, apiError{"streaming not enabled"})
		return
	}
	a.stream.ServeHTTP(w, r)
}

// handleDashboard serves the embedded live ops page (GET /dashboard). It
// requires the stream: a dashboard with nothing to watch is a 404, not a
// dead page.
func (a *API) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if a.stream == nil {
		writeJSON(w, http.StatusNotFound, apiError{"streaming not enabled"})
		return
	}
	alert.DashboardHandler().ServeHTTP(w, r)
}

// healthzResponse is the GET /healthz payload.
type healthzResponse struct {
	Status    string  `json:"status"`
	GoVersion string  `json:"goVersion"`
	UptimeSec float64 `json:"uptimeSec"`
	// Mode is the runtime's serving architecture: "epoch", "striped", or
	// "serial".
	Mode string `json:"mode"`
	// Minute is the current simulated minute.
	Minute int `json:"minute"`
	// Functions counts every slot ever issued; Active excludes tombstones.
	Functions int `json:"functions"`
	Active    int `json:"active"`
	// Telemetry, Attribution, and Provenance report which optional
	// pipelines are wired.
	Telemetry   bool `json:"telemetry"`
	Attribution bool `json:"attribution"`
	Provenance  bool `json:"provenance"`
	// TournamentEntrants lists the attribution arena's shadow entrants in
	// accounting order (baselines first), so clients — the dashboard's
	// metric picker in particular — can discover savings_vs_<entrant>_usd
	// series. Empty when attribution is off.
	TournamentEntrants []string `json:"tournamentEntrants,omitempty"`
	// Tracer is the sampled-invocation tracer's status (all zeros when no
	// tracer is attached).
	Tracer provenance.TracerStats `json:"tracer"`
	// Stream is the broadcaster's fan-out counters (zeros when disabled).
	Stream alert.BroadcastStats `json:"stream"`
	// Alerts is the rule engine's status (enabled false when disabled).
	Alerts alert.Status `json:"alerts"`
}

// handleHealthz serves the daemon health summary (GET /healthz).
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET required"})
		return
	}
	active := 0
	n := a.rt.NumFunctions()
	for fn := 0; fn < n; fn++ {
		if a.rt.FunctionActive(fn) {
			active++
		}
	}
	var entrants []string
	if a.acct != nil {
		entrants = a.acct.EntrantNames()
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:             "ok",
		GoVersion:          goruntime.Version(),
		UptimeSec:          time.Since(a.started).Seconds(),
		Mode:               a.rt.Mode(),
		Minute:             a.rt.Stats().Minute,
		Functions:          n,
		Active:             active,
		Telemetry:          a.tel != nil,
		Attribution:        a.acct != nil,
		Provenance:         a.prov != nil,
		TournamentEntrants: entrants,
		Tracer:             a.tracer.Stats(),
		Stream:             a.stream.Stats(),
		Alerts:             a.alerts.Status(),
	})
}
