package runtime

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	goruntime "runtime"
	"sync"
	"time"
)

// Arrival mixes for the load generator: which functions the synthetic
// callers hit.
const (
	// MixUniform spreads invocations evenly across every function.
	MixUniform = "uniform"
	// MixZipf skews invocations Zipf(s=1.2) towards low-numbered
	// functions — the realistic "few hot functions" shape.
	MixZipf = "zipf"
	// MixHotspot sends 80% of invocations to function 0 and spreads the
	// rest uniformly — the worst case for a striped lock architecture,
	// since most traffic contends on one stripe.
	MixHotspot = "hotspot"
)

// LoadConfig configures one closed-loop load-generation run against a
// Runtime (see RunLoad).
type LoadConfig struct {
	// Workers is the number of concurrent closed-loop callers; each
	// issues its next invocation as soon as the previous one returns.
	// Defaults to GOMAXPROCS.
	Workers int
	// Duration is the wall-clock run length. Required.
	Duration time.Duration
	// Mix selects the arrival mix: MixUniform (default), MixZipf, or
	// MixHotspot.
	Mix string
	// Seed derives each worker's private RNG; identical seeds draw
	// identical per-worker function sequences.
	Seed int64
	// StepEvery, when positive, advances the runtime's minute barrier on
	// this wall-clock cadence from a background stepper, so the run
	// exercises Invoke/Step interleaving and the policy's decision path,
	// not just the invocation fast path.
	StepEvery time.Duration
}

// LoadResult is the outcome of one RunLoad call — the record the load
// harness serializes into BENCH_runtime.json (field names below are the
// JSON fields).
type LoadResult struct {
	// Mode is the runtime's serving architecture: "serial", "striped", or
	// "epoch".
	Mode string `json:"mode"`
	// Workers and Functions describe the run shape; GOMAXPROCS is the
	// parallelism available to the Go scheduler when the run executed.
	Workers    int    `json:"workers"`
	Functions  int    `json:"functions"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Mix        string `json:"mix"`
	// DurationSec is the measured wall time of the run.
	DurationSec float64 `json:"duration_sec"`
	// Invocations is the number of successful invocations; Throughput is
	// Invocations / DurationSec.
	Invocations int64   `json:"invocations"`
	Throughput  float64 `json:"throughput_inv_per_sec"`
	// MinutesStepped counts barrier advances performed by the background
	// stepper during the run.
	MinutesStepped int64 `json:"minutes_stepped"`
	// Errors counts failed invocations (0 in a healthy run).
	Errors int64 `json:"errors"`
	// Latency percentiles of Invoke wall time, in microseconds. The
	// histogram buckets are powers of two of nanoseconds, so percentiles
	// are upper bounds accurate to 2×; Max is exact.
	LatencyP50us float64 `json:"latency_p50_us"`
	LatencyP90us float64 `json:"latency_p90_us"`
	LatencyP99us float64 `json:"latency_p99_us"`
	LatencyMaxus float64 `json:"latency_max_us"`
}

// latencyHist is a power-of-two-bucketed nanosecond histogram: cheap
// enough for the invocation hot loop, mergeable across workers, with 2×
// percentile resolution and an exact max.
type latencyHist struct {
	buckets [64]int64
	count   int64
	max     int64
}

func (h *latencyHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))]++
	h.count++
	if ns > h.max {
		h.max = ns
	}
}

func (h *latencyHist) merge(o *latencyHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// percentile returns an upper bound (in nanoseconds) under which fraction
// p of observations fall. The top populated bucket is clamped to the exact
// max.
func (h *latencyHist) percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(p * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			upper := int64(1) << uint(i)
			if upper > h.max {
				upper = h.max
			}
			return float64(upper)
		}
	}
	return float64(h.max)
}

// picker returns a deterministic function-index source for one worker.
func picker(mix string, rng *rand.Rand, nFn int) (func() int, error) {
	switch mix {
	case MixUniform, "":
		return func() int { return rng.Intn(nFn) }, nil
	case MixZipf:
		z := rand.NewZipf(rng, 1.2, 1, uint64(nFn-1))
		return func() int { return int(z.Uint64()) }, nil
	case MixHotspot:
		return func() int {
			if nFn == 1 || rng.Float64() < 0.8 {
				return 0
			}
			return 1 + rng.Intn(nFn-1)
		}, nil
	default:
		return nil, fmt.Errorf("runtime: unknown load mix %q (want %s, %s, or %s)", mix, MixUniform, MixZipf, MixHotspot)
	}
}

// RunLoad hammers a Runtime with cfg.Workers closed-loop callers for
// cfg.Duration and reports throughput and Invoke latency percentiles — the
// load harness behind cmd/pulseload and the BENCH_runtime.json trajectory.
// The runtime is left stepped but open; the caller owns Close.
func RunLoad(rt *Runtime, cfg LoadConfig) (LoadResult, error) {
	if rt == nil {
		return LoadResult{}, fmt.Errorf("runtime: nil runtime")
	}
	if cfg.Duration <= 0 {
		return LoadResult{}, fmt.Errorf("runtime: non-positive load duration %v", cfg.Duration)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = goruntime.GOMAXPROCS(0)
	}
	if cfg.Mix == "" {
		cfg.Mix = MixUniform
	}
	nFn := rt.NumFunctions()
	if _, err := picker(cfg.Mix, rand.New(rand.NewSource(0)), nFn); err != nil {
		return LoadResult{}, err
	}

	var (
		stop    = make(chan struct{})
		stepped int64
		stepWg  sync.WaitGroup
	)
	if cfg.StepEvery > 0 {
		stepWg.Add(1)
		go func() {
			defer stepWg.Done()
			tick := time.NewTicker(cfg.StepEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := rt.Step(); err != nil {
						return
					}
					stepped++
				}
			}
		}()
	}

	hists := make([]latencyHist, cfg.Workers)
	errCounts := make([]int64, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			pick, _ := picker(cfg.Mix, rng, nFn)
			h := &hists[w]
			for {
				t0 := time.Now()
				if t0.After(deadline) {
					return
				}
				_, err := rt.Invoke(pick())
				if err != nil {
					errCounts[w]++
					if errors.Is(err, ErrClosed) {
						return
					}
					continue
				}
				h.observe(int64(time.Since(t0)))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	stepWg.Wait()

	var total latencyHist
	var errs int64
	for w := range hists {
		total.merge(&hists[w])
		errs += errCounts[w]
	}
	const usPerNs = 1e-3
	return LoadResult{
		Mode:           rt.Mode(),
		Workers:        cfg.Workers,
		Functions:      nFn,
		GOMAXPROCS:     goruntime.GOMAXPROCS(0),
		Mix:            cfg.Mix,
		DurationSec:    elapsed.Seconds(),
		Invocations:    total.count,
		Throughput:     float64(total.count) / elapsed.Seconds(),
		MinutesStepped: stepped,
		Errors:         errs,
		LatencyP50us:   total.percentile(0.50) * usPerNs,
		LatencyP90us:   total.percentile(0.90) * usPerNs,
		LatencyP99us:   total.percentile(0.99) * usPerNs,
		LatencyMaxus:   float64(total.max) * usPerNs,
	}, nil
}
