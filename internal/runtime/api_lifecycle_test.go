package runtime

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestFunctionsRegisterEndpoint drives the online-registration route:
// a valid body issues the next slot (201), the new function serves
// immediately, and malformed bodies, bad families, duplicate live names,
// and invalid names are client errors.
func TestFunctionsRegisterEndpoint(t *testing.T) {
	api, rt := newTestAPI(t)
	before := rt.NumFunctions()

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/functions",
		strings.NewReader(`{"name":"newcomer","family":0}`)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /functions = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Function int    `json:"function"`
		Name     string `json:"name"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Function != before || resp.Name != "newcomer" {
		t.Errorf("register response %+v, want slot %d name newcomer", resp, before)
	}

	// The fresh slot serves, cold by construction.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invoke?fn="+strconv.Itoa(resp.Function), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("invoking fresh slot = %d: %s", rec.Code, rec.Body.String())
	}
	var inv Invocation
	if err := json.Unmarshal(rec.Body.Bytes(), &inv); err != nil {
		t.Fatal(err)
	}
	if !inv.Cold {
		t.Error("first invocation of a freshly registered function was warm, want cold")
	}

	for name, body := range map[string]string{
		"bad JSON":       `{"name":`,
		"bad family":     `{"name":"x","family":99}`,
		"duplicate name": `{"name":"newcomer","family":0}`,
		"invalid name":   `{"name":"has spaces!","family":0}`,
		"empty name":     `{"name":"","family":0}`,
	} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/functions", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: POST /functions = %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}

	// GET /functions reports the newcomer active with its name.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/functions", nil))
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	var list []struct {
		Function int    `json:"function"`
		Name     string `json:"name"`
		Active   bool   `json:"active"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != before+1 || list[before].Name != "newcomer" || !list[before].Active {
		t.Errorf("GET /functions after register: %+v", list)
	}
}

// TestFunctionsDeregisterEndpoint drives DELETE /functions/{name}: the slot
// tombstones (listed inactive), invoking it returns 410 Gone — never a
// panic — and deleting an unknown name is 404.
func TestFunctionsDeregisterEndpoint(t *testing.T) {
	api, rt := newTestAPI(t)
	name := rt.FunctionName(0)

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/functions/"+name, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /functions/%s = %d: %s", name, rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/invoke?fn=0", nil))
	if rec.Code != http.StatusGone {
		t.Errorf("invoking deregistered slot = %d, want 410 Gone (%s)", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/functions/"+name, nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("double DELETE = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/functions/never-existed", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/functions", nil))
	var list []struct {
		Active       bool   `json:"active"`
		AliveVariant string `json:"aliveVariant"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list[0].Active {
		t.Error("deregistered slot still listed active")
	}
	if list[0].AliveVariant != "" {
		t.Error("deregistered slot still shows a warm variant")
	}
}

// TestFunctionsMethodRejection pins the 405 behaviour of the mutation
// routes: the collection accepts only GET and POST, the named route only
// DELETE.
func TestFunctionsMethodRejection(t *testing.T) {
	api, rt := newTestAPI(t)
	name := rt.FunctionName(0)
	for _, c := range []struct {
		method, path string
	}{
		{http.MethodPut, "/functions"},
		{http.MethodDelete, "/functions"},
		{http.MethodPatch, "/functions"},
		{http.MethodGet, "/functions/" + name},
		{http.MethodPost, "/functions/" + name},
		{http.MethodPut, "/functions/" + name},
	} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(c.method, c.path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.path, rec.Code)
		}
	}
}
