package policy

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
)

func qlearnCatalog(t *testing.T) *models.Catalog {
	t.Helper()
	cat := &models.Catalog{Families: []models.Family{
		{Name: "fam", Task: "test", Variants: []models.Variant{
			{Name: "lo", AccuracyPct: 60, ExecSec: 0.5, ColdStartSec: 2, MemoryMB: 512},
			{Name: "hi", AccuracyPct: 90, ExecSec: 1.0, ColdStartSec: 4, MemoryMB: 2048},
		}},
	}}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	return cat
}

// A function invoked every minute teaches the table that dropping is
// expensive: after enough barriers the greedy action for its state keeps
// a variant warm rather than paying the cold penalty each minute.
func TestQLearnLearnsToKeepHotFunction(t *testing.T) {
	cat := qlearnCatalog(t)
	e := NewQLearnEntrant("qlearn", cat, cluster.DefaultCostModel(), QLearnConfig{})
	e.Register(0, 0, 2)

	warm := 0
	const minutes = 400
	for m := 0; m < minutes; m++ {
		if e.KeepAlive(m, 0) >= 0 {
			warm++
		}
		e.Record(m, 0, 3)
	}
	// Early minutes explore and learn; the run as a whole must be
	// dominated by keep decisions.
	if warm < minutes/2 {
		t.Errorf("hot function kept warm only %d/%d minutes", warm, minutes)
	}

	// An always-idle function must be dropped most of the time. The
	// shared table means the hot function's first cold-start penalty
	// poisons the long-idle state for a while, so convergence is gradual
	// — require a clear majority, not the full greedy fraction.
	e.Register(1, 0, 2)
	drops := 0
	for m := minutes; m < 2*minutes; m++ {
		if e.KeepAlive(m, 1) == cluster.NoVariant {
			drops++
		}
		e.Record(m, 1, 0)
	}
	if drops < minutes*65/100 {
		t.Errorf("idle function dropped only %d/%d minutes", drops, minutes)
	}
}

func TestQLearnDeterministicReplay(t *testing.T) {
	cat := qlearnCatalog(t)
	cost := cluster.DefaultCostModel()
	a := NewQLearnEntrant("a", cat, cost, QLearnConfig{})
	b := NewQLearnEntrant("b", cat, cost, QLearnConfig{})
	a.Register(0, 0, 2)
	b.Register(0, 0, 2)
	for m := 0; m < 200; m++ {
		count := 0
		if m%3 == 0 {
			count = 1 + m%4
		}
		if va, vb := a.KeepAlive(m, 0), b.KeepAlive(m, 0); va != vb {
			t.Fatalf("minute %d: decisions diverge (%d vs %d)", m, va, vb)
		}
		a.Record(m, 0, count)
		b.Record(m, 0, count)
	}
	if a.q != b.q {
		t.Error("Q-tables diverged on identical traces")
	}
}

func TestQLearnRetireResetsObservables(t *testing.T) {
	cat := qlearnCatalog(t)
	e := NewQLearnEntrant("qlearn", cat, cluster.DefaultCostModel(), QLearnConfig{})
	e.Register(0, 0, 2)
	for m := 0; m < 50; m++ {
		e.KeepAlive(m, 0)
		e.Record(m, 0, 5)
	}
	e.Retire(0)
	if e.idle[0] != qIdleCap || e.rate[0] != 0 || e.prevState[0] != -1 {
		t.Errorf("retired slot observables not reset: idle=%d rate=%v prev=%d",
			e.idle[0], e.rate[0], e.prevState[0])
	}
	// A Record with no pending decision (fresh registration mid-minute)
	// must not update the table.
	q := e.q
	e.Record(50, 0, 1)
	if e.q != q {
		t.Error("barrier without a pending decision mutated the Q-table")
	}
}
