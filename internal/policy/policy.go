// Package policy implements the baseline keep-alive policies PULSE is
// evaluated against: the OpenWhisk-style fixed 10-minute policy (all-high
// and all-low variants), the random high/low mix, and the look-ahead
// "intelligent solution" of the paper's motivation study (Tables II/III).
package policy

import (
	"fmt"
	"math/rand"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// base carries the state shared by every fixed-window baseline: which
// family each function serves and the minute of each function's last
// invocation.
type base struct {
	catalog    *models.Catalog
	assignment models.Assignment
	window     int
	lastInv    []int // minute of last invocation per function, -1 before any
	out        []int // reused decision buffer
}

func newBase(cat *models.Catalog, asg models.Assignment, window int) (*base, error) {
	if cat == nil {
		return nil, fmt.Errorf("policy: nil catalog")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := asg.Validate(cat, len(asg)); err != nil {
		return nil, err
	}
	if len(asg) == 0 {
		return nil, fmt.Errorf("policy: empty assignment")
	}
	if window <= 0 {
		window = cluster.DefaultKeepAliveWindow
	}
	b := &base{
		catalog:    cat,
		assignment: asg,
		window:     window,
		lastInv:    make([]int, len(asg)),
		out:        make([]int, len(asg)),
	}
	for i := range b.lastInv {
		b.lastInv[i] = -1
	}
	return b, nil
}

func (b *base) family(fn int) *models.Family {
	return &b.catalog.Families[b.assignment[fn]]
}

// withinWindow reports whether minute t falls inside the keep-alive window
// opened by the function's last invocation: an invocation at minute m keeps
// the container alive through minute m+window, so an arrival at m+window is
// still warm (the paper's "invocation in the 2nd minute … active until the
// 12th minute").
func (b *base) withinWindow(t, fn int) bool {
	last := b.lastInv[fn]
	return last >= 0 && t <= last+b.window
}

func (b *base) recordInvocations(t int, counts []int) {
	for fn, c := range counts {
		if c > 0 {
			b.lastInv[fn] = t
		}
	}
}

// Fixed is the OpenWhisk-style fixed keep-alive policy: after every
// invocation the container holding one fixed quality variant stays alive
// for the full window. With Quality = QualityHighest this is the paper's
// competing baseline ("All High Quality"); with QualityLowest it is the
// "All Low Quality" row of Tables II/III.
type Fixed struct {
	*base
	quality Quality
	name    string
}

// Quality selects which variant a single-quality policy pins.
type Quality int

// Quality levels for Fixed and the random mixer.
const (
	QualityLowest Quality = iota
	QualityHighest
)

func (q Quality) variantIndex(f *models.Family) int {
	if q == QualityLowest {
		return 0
	}
	return f.NumVariants() - 1
}

// NewFixed builds a fixed keep-alive policy. window ≤ 0 selects the default
// 10 minutes.
func NewFixed(cat *models.Catalog, asg models.Assignment, window int, q Quality) (*Fixed, error) {
	b, err := newBase(cat, asg, window)
	if err != nil {
		return nil, err
	}
	name := "openwhisk-fixed-high"
	if q == QualityLowest {
		name = "openwhisk-fixed-low"
	}
	return &Fixed{base: b, quality: q, name: name}, nil
}

// Name implements cluster.Policy.
func (p *Fixed) Name() string { return p.name }

// KeepAlive implements cluster.Policy.
func (p *Fixed) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.withinWindow(t, fn) {
			p.out[fn] = p.quality.variantIndex(p.family(fn))
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *Fixed) ColdVariant(_, fn int) int {
	return p.quality.variantIndex(p.family(fn))
}

// RecordInvocations implements cluster.Policy.
func (p *Fixed) RecordInvocations(t int, counts []int) { p.recordInvocations(t, counts) }

// RandomMix is the motivation study's third approach: a balanced random
// half of the functions keep their high-quality variant alive, the rest
// their low-quality variant, within the same fixed window.
type RandomMix struct {
	*base
	high []bool
}

// NewRandomMix builds the balanced random mixer. The assignment of
// functions to qualities is drawn once, seeded, with exactly half (rounded
// up) of the functions on high quality — "we ensured that the number of
// functions with high-quality and low-quality models kept-alive was
// balanced".
func NewRandomMix(cat *models.Catalog, asg models.Assignment, window int, seed int64) (*RandomMix, error) {
	b, err := newBase(cat, asg, window)
	if err != nil {
		return nil, err
	}
	n := len(asg)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	high := make([]bool, n)
	for i, fn := range perm {
		high[fn] = i < (n+1)/2
	}
	return &RandomMix{base: b, high: high}, nil
}

// Name implements cluster.Policy.
func (p *RandomMix) Name() string { return "random-mix" }

func (p *RandomMix) variantFor(fn int) int {
	if p.high[fn] {
		return QualityHighest.variantIndex(p.family(fn))
	}
	return QualityLowest.variantIndex(p.family(fn))
}

// KeepAlive implements cluster.Policy.
func (p *RandomMix) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.withinWindow(t, fn) {
			p.out[fn] = p.variantFor(fn)
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *RandomMix) ColdVariant(_, fn int) int { return p.variantFor(fn) }

// RecordInvocations implements cluster.Policy.
func (p *RandomMix) RecordInvocations(t int, counts []int) { p.recordInvocations(t, counts) }

// Oracle is the motivation study's "intelligent solution": it peeks at the
// trace and, when opening a keep-alive window, pins the high-quality
// variant for functions that will actually be invoked at least Threshold
// times within the window, and the low-quality variant otherwise. It is an
// upper bound used in Tables II/III, not a deployable policy.
type Oracle struct {
	*base
	tr        *trace.Trace
	threshold int
	choice    []int // variant chosen for the currently open window, per function
}

// NewOracle builds the look-ahead policy. threshold ≤ 0 defaults to 1.
func NewOracle(cat *models.Catalog, asg models.Assignment, window int, tr *trace.Trace, threshold int) (*Oracle, error) {
	b, err := newBase(cat, asg, window)
	if err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("policy: oracle needs a trace")
	}
	if len(tr.Functions) != len(asg) {
		return nil, fmt.Errorf("policy: oracle trace has %d functions, assignment %d", len(tr.Functions), len(asg))
	}
	if threshold <= 0 {
		threshold = 1
	}
	o := &Oracle{base: b, tr: tr, threshold: threshold, choice: make([]int, len(asg))}
	for i := range o.choice {
		o.choice[i] = cluster.NoVariant
	}
	return o, nil
}

// Name implements cluster.Policy.
func (p *Oracle) Name() string { return "oracle-intelligent" }

// KeepAlive implements cluster.Policy.
func (p *Oracle) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.withinWindow(t, fn) {
			p.out[fn] = p.choice[fn]
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *Oracle) ColdVariant(_, fn int) int {
	return QualityHighest.variantIndex(p.family(fn))
}

// RecordInvocations implements cluster.Policy.
func (p *Oracle) RecordInvocations(t int, counts []int) {
	for fn, c := range counts {
		if c == 0 {
			continue
		}
		// Look ahead: invocations arriving within (t, t+window].
		future := 0
		f := &p.tr.Functions[fn]
		for dt := 1; dt <= p.window && t+dt < len(f.Counts); dt++ {
			future += f.Counts[t+dt]
		}
		if future >= p.threshold {
			p.choice[fn] = QualityHighest.variantIndex(p.family(fn))
		} else {
			p.choice[fn] = QualityLowest.variantIndex(p.family(fn))
		}
	}
	p.recordInvocations(t, counts)
}
