// Package policy implements the baseline keep-alive policies PULSE is
// evaluated against: the OpenWhisk-style fixed 10-minute policy (all-high
// and all-low variants), the random high/low mix, and the look-ahead
// "intelligent solution" of the paper's motivation study (Tables II/III).
package policy

import (
	"fmt"
	"math/rand"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/identity"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// base carries the state shared by every fixed-window baseline: which
// family each function serves, the minute of each function's last
// invocation, and the identity registry that lets functions register and
// deregister while a run is in flight. Per-function slices are indexed by
// registry slot and append-only: a deregistered slot keeps its entries but
// resets lastInv to -1, which is exactly the never-invoked state, so the
// keep-alive scans need no liveness branch.
type base struct {
	catalog    *models.Catalog
	assignment models.Assignment
	window     int
	reg        *identity.Registry
	lastInv    []int // minute of last invocation per slot, -1 before any
	out        []int // reused decision buffer
}

func newBase(cat *models.Catalog, asg models.Assignment, window int) (*base, error) {
	return newBaseNamed(cat, asg, window, nil)
}

// newBaseNamed builds the shared baseline state with explicit function
// names (nil selects fn-0 … fn-{n-1}).
func newBaseNamed(cat *models.Catalog, asg models.Assignment, window int, names []string) (*base, error) {
	if cat == nil {
		return nil, fmt.Errorf("policy: nil catalog")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := asg.Validate(cat, len(asg)); err != nil {
		return nil, err
	}
	if len(asg) == 0 {
		return nil, fmt.Errorf("policy: empty assignment")
	}
	if names == nil {
		names = identity.DefaultNames(len(asg))
	}
	if len(names) != len(asg) {
		return nil, fmt.Errorf("policy: %d names for %d functions", len(names), len(asg))
	}
	reg, err := identity.NewRegistry(names)
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = cluster.DefaultKeepAliveWindow
	}
	b := &base{
		catalog:    cat,
		assignment: append(models.Assignment(nil), asg...),
		window:     window,
		reg:        reg,
		lastInv:    make([]int, len(asg)),
		out:        make([]int, len(asg)),
	}
	for i := range b.lastInv {
		b.lastInv[i] = -1
	}
	return b, nil
}

// RegisterFunction implements cluster.DynamicPolicy: the named function
// gets the next slot with empty history, so it behaves like a never-invoked
// function (cold) until its first recorded invocations.
func (b *base) RegisterFunction(name string, family int) (int, error) {
	if family < 0 || family >= len(b.catalog.Families) {
		return 0, fmt.Errorf("policy: family %d out of range for %q", family, name)
	}
	slot, err := b.reg.Register(name)
	if err != nil {
		return 0, err
	}
	b.assignment = append(b.assignment, family)
	b.lastInv = append(b.lastInv, -1)
	b.out = append(b.out, cluster.NoVariant)
	return slot, nil
}

// DeregisterFunction implements cluster.DynamicPolicy: the slot is
// tombstoned and its last-invocation mark reset, which closes any open
// keep-alive window immediately.
func (b *base) DeregisterFunction(name string) error {
	slot, err := b.reg.Deregister(name)
	if err != nil {
		return err
	}
	b.lastInv[slot] = -1
	return nil
}

func (b *base) family(fn int) *models.Family {
	return &b.catalog.Families[b.assignment[fn]]
}

// withinWindow reports whether minute t falls inside the keep-alive window
// opened by the function's last invocation: an invocation at minute m keeps
// the container alive through minute m+window, so an arrival at m+window is
// still warm (the paper's "invocation in the 2nd minute … active until the
// 12th minute").
func (b *base) withinWindow(t, fn int) bool {
	last := b.lastInv[fn]
	return last >= 0 && t <= last+b.window
}

func (b *base) recordInvocations(t int, counts []int) {
	active := b.reg.ActiveSlice()
	for fn, c := range counts {
		if c > 0 && active[fn] {
			b.lastInv[fn] = t
		}
	}
}

// Fixed is the OpenWhisk-style fixed keep-alive policy: after every
// invocation the container holding one fixed quality variant stays alive
// for the full window. With Quality = QualityHighest this is the paper's
// competing baseline ("All High Quality"); with QualityLowest it is the
// "All Low Quality" row of Tables II/III.
type Fixed struct {
	*base
	quality Quality
	name    string
}

// Quality selects which variant a single-quality policy pins.
type Quality int

// Quality levels for Fixed and the random mixer.
const (
	QualityLowest Quality = iota
	QualityHighest
)

func (q Quality) variantIndex(f *models.Family) int {
	if q == QualityLowest {
		return 0
	}
	return f.NumVariants() - 1
}

// NewFixed builds a fixed keep-alive policy. window ≤ 0 selects the default
// 10 minutes.
func NewFixed(cat *models.Catalog, asg models.Assignment, window int, q Quality) (*Fixed, error) {
	return NewFixedNamed(cat, asg, window, q, nil)
}

// NewFixedNamed builds a fixed keep-alive policy with explicit function
// names, the form churn runs use so later registrations can refer to the
// initial population by name. nil names selects fn-0 … fn-{n-1}.
func NewFixedNamed(cat *models.Catalog, asg models.Assignment, window int, q Quality, names []string) (*Fixed, error) {
	b, err := newBaseNamed(cat, asg, window, names)
	if err != nil {
		return nil, err
	}
	name := "openwhisk-fixed-high"
	if q == QualityLowest {
		name = "openwhisk-fixed-low"
	}
	return &Fixed{base: b, quality: q, name: name}, nil
}

// Name implements cluster.Policy.
func (p *Fixed) Name() string { return p.name }

// KeepAlive implements cluster.Policy.
func (p *Fixed) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.withinWindow(t, fn) {
			p.out[fn] = p.quality.variantIndex(p.family(fn))
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *Fixed) ColdVariant(_, fn int) int {
	return p.quality.variantIndex(p.family(fn))
}

// RecordInvocations implements cluster.Policy.
func (p *Fixed) RecordInvocations(t int, counts []int) { p.recordInvocations(t, counts) }

// RandomMix is the motivation study's third approach: a balanced random
// half of the functions keep their high-quality variant alive, the rest
// their low-quality variant, within the same fixed window.
type RandomMix struct {
	*base
	high []bool
}

// NewRandomMix builds the balanced random mixer. The assignment of
// functions to qualities is drawn once, seeded, with exactly half (rounded
// up) of the functions on high quality — "we ensured that the number of
// functions with high-quality and low-quality models kept-alive was
// balanced".
func NewRandomMix(cat *models.Catalog, asg models.Assignment, window int, seed int64) (*RandomMix, error) {
	return NewRandomMixNamed(cat, asg, window, seed, nil)
}

// NewRandomMixNamed builds the balanced random mixer with explicit function
// names (nil selects fn-0 … fn-{n-1}).
func NewRandomMixNamed(cat *models.Catalog, asg models.Assignment, window int, seed int64, names []string) (*RandomMix, error) {
	b, err := newBaseNamed(cat, asg, window, names)
	if err != nil {
		return nil, err
	}
	n := len(asg)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	high := make([]bool, n)
	for i, fn := range perm {
		high[fn] = i < (n+1)/2
	}
	return &RandomMix{base: b, high: high}, nil
}

// Name implements cluster.Policy.
func (p *RandomMix) Name() string { return "random-mix" }

func (p *RandomMix) variantFor(fn int) int {
	if p.high[fn] {
		return QualityHighest.variantIndex(p.family(fn))
	}
	return QualityLowest.variantIndex(p.family(fn))
}

// KeepAlive implements cluster.Policy.
func (p *RandomMix) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.withinWindow(t, fn) {
			p.out[fn] = p.variantFor(fn)
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *RandomMix) ColdVariant(_, fn int) int { return p.variantFor(fn) }

// RegisterFunction implements cluster.DynamicPolicy: the newcomer joins the
// minority quality side (high on ties) so the mix stays balanced across the
// live population without redrawing the survivors.
func (p *RandomMix) RegisterFunction(name string, family int) (int, error) {
	slot, err := p.base.RegisterFunction(name, family)
	if err != nil {
		return 0, err
	}
	highs, lives := 0, 0
	active := p.reg.ActiveSlice()
	for fn := 0; fn < slot; fn++ {
		if active[fn] {
			lives++
			if p.high[fn] {
				highs++
			}
		}
	}
	p.high = append(p.high, highs <= lives-highs)
	return slot, nil
}

// RecordInvocations implements cluster.Policy.
func (p *RandomMix) RecordInvocations(t int, counts []int) { p.recordInvocations(t, counts) }

// Oracle is the motivation study's "intelligent solution": it peeks at the
// trace and, when opening a keep-alive window, pins the high-quality
// variant for functions that will actually be invoked at least Threshold
// times within the window, and the low-quality variant otherwise. It is an
// upper bound used in Tables II/III, not a deployable policy.
type Oracle struct {
	*base
	tr        *trace.Trace
	threshold int
	choice    []int  // variant chosen for the currently open window, per slot
	traceIdx  []int  // slot → index into tr.Functions (slots ≠ trace order under churn)
	used      []bool // trace functions already bound to a slot
}

// NewOracle builds the look-ahead policy. asg is indexed by trace function;
// on a churn trace only the minute-0 population gets slots up front and
// later arrivals register by trace name (RegisterFunction). threshold ≤ 0
// defaults to 1.
func NewOracle(cat *models.Catalog, asg models.Assignment, window int, tr *trace.Trace, threshold int) (*Oracle, error) {
	if tr == nil {
		return nil, fmt.Errorf("policy: oracle needs a trace")
	}
	if len(tr.Functions) != len(asg) {
		return nil, fmt.Errorf("policy: oracle trace has %d functions, assignment %d", len(tr.Functions), len(asg))
	}
	churn := tr.HasChurn()
	var names []string
	var initialAsg models.Assignment
	var traceIdx []int
	used := make([]bool, len(tr.Functions))
	for i := range tr.Functions {
		if !tr.Functions[i].LiveAt(0, tr.Horizon) {
			continue
		}
		names = append(names, tr.Functions[i].Name)
		initialAsg = append(initialAsg, asg[i])
		traceIdx = append(traceIdx, i)
		used[i] = true
	}
	if !churn {
		// Static traces never register by name, so invalid or duplicate
		// trace names must not reject the run; fall back to default names.
		if _, err := identity.NewRegistry(names); err != nil {
			names = nil
		}
	}
	b, err := newBaseNamed(cat, initialAsg, window, names)
	if err != nil {
		return nil, err
	}
	if threshold <= 0 {
		threshold = 1
	}
	o := &Oracle{base: b, tr: tr, threshold: threshold,
		choice: make([]int, len(initialAsg)), traceIdx: traceIdx, used: used}
	for i := range o.choice {
		o.choice[i] = cluster.NoVariant
	}
	return o, nil
}

// RegisterFunction implements cluster.DynamicPolicy: the slot binds to the
// first not-yet-bound trace function with the given name, which is where
// the oracle's look-ahead for the newcomer comes from.
func (p *Oracle) RegisterFunction(name string, family int) (int, error) {
	ti := -1
	for i := range p.tr.Functions {
		if !p.used[i] && p.tr.Functions[i].Name == name {
			ti = i
			break
		}
	}
	if ti < 0 {
		return 0, fmt.Errorf("policy: oracle trace has no unbound function named %q", name)
	}
	slot, err := p.base.RegisterFunction(name, family)
	if err != nil {
		return 0, err
	}
	p.used[ti] = true
	p.traceIdx = append(p.traceIdx, ti)
	p.choice = append(p.choice, cluster.NoVariant)
	return slot, nil
}

// Name implements cluster.Policy.
func (p *Oracle) Name() string { return "oracle-intelligent" }

// KeepAlive implements cluster.Policy.
func (p *Oracle) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.withinWindow(t, fn) {
			p.out[fn] = p.choice[fn]
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *Oracle) ColdVariant(_, fn int) int {
	return QualityHighest.variantIndex(p.family(fn))
}

// RecordInvocations implements cluster.Policy.
func (p *Oracle) RecordInvocations(t int, counts []int) {
	for fn, c := range counts {
		if c == 0 {
			continue
		}
		// Look ahead: invocations arriving within (t, t+window].
		future := 0
		f := &p.tr.Functions[p.traceIdx[fn]]
		for dt := 1; dt <= p.window && t+dt < len(f.Counts); dt++ {
			future += f.Counts[t+dt]
		}
		if future >= p.threshold {
			p.choice[fn] = QualityHighest.variantIndex(p.family(fn))
		} else {
			p.choice[fn] = QualityLowest.variantIndex(p.family(fn))
		}
	}
	p.recordInvocations(t, counts)
}
