package policy

import (
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
)

// QLearnEntrant is a tournament shadow policy that learns a keep-alive
// rule online with tabular Q-learning. The state is coarse enough to
// generalize across functions — an idle-time bucket crossed with a
// recent-rate bucket — and the Q-table is shared by every function, so
// one function's experience transfers to look-alikes immediately.
//
//	state  = idle bucket (7) × EWMA-rate bucket (5)        → 35 states
//	action = drop | keep lowest variant | keep highest     → 3 actions
//	reward = −(keep-alive $/min of the held variant)
//	         −(cold-start penalty when dropped yet invoked)
//
// Determinism: action selection at the open of minute m uses history
// through minute m−1 plus a hash of (m, fn) for ε-exploration — no global
// RNG — and Q-updates happen only in Record, at the minute barrier, in
// ascending function order. The learned values are therefore a pure
// function of the trace, invariant to shard count and serving mode (see
// DESIGN.md §6.9).
type QLearnEntrant struct {
	name string
	cfg  QLearnConfig

	q [qStates][qActions]float64

	// Per-slot observables and the pending decision to be settled at the
	// next barrier.
	fam        []int
	highest    []int
	idle       []int     // minutes since last invoked minute (capped)
	rate       []float64 // EWMA invocations/minute
	prevState  []int     // state at the last KeepAlive decision, -1 none
	prevAction []int

	// Per-family keep-alive $/minute of the lowest and highest variant,
	// precomputed from the catalog.
	costLow  []float64
	costHigh []float64
}

// QLearnConfig parameterizes the learner.
type QLearnConfig struct {
	// LearnRate is the Q-update step size in (0, 1].
	LearnRate float64
	// Discount is the future-reward discount factor in [0, 1).
	Discount float64
	// ExploreEpsilon is the probability of a (deterministic, hash-driven)
	// exploratory action, in [0, 1).
	ExploreEpsilon float64
	// ColdCostMinutes expresses one cold start as this many minutes of
	// keep-alive for the family's highest variant.
	ColdCostMinutes float64
}

// DefaultQLearnConfig returns working defaults.
func DefaultQLearnConfig() QLearnConfig {
	return QLearnConfig{LearnRate: 0.1, Discount: 0.9, ExploreEpsilon: 0.05, ColdCostMinutes: 15}
}

const (
	qIdleBuckets = 7
	qRateBuckets = 5
	qStates      = qIdleBuckets * qRateBuckets
	qActions     = 3

	actDrop     = 0
	actKeepLow  = 1
	actKeepHigh = 2

	qIdleCap  = 10_000 // idle counter cap; far beyond the last bucket edge
	qRateEWMA = 0.8    // rate ← qRateEWMA·rate + (1−qRateEWMA)·count
)

// NewQLearnEntrant builds the entrant. The catalog and cost model price
// the actions; the zero-value config selects DefaultQLearnConfig.
func NewQLearnEntrant(name string, cat *models.Catalog, cost cluster.CostModel, cfg QLearnConfig) *QLearnEntrant {
	if cfg == (QLearnConfig{}) {
		cfg = DefaultQLearnConfig()
	}
	if cost.USDPerGBSecond == 0 {
		cost = cluster.DefaultCostModel()
	}
	e := &QLearnEntrant{
		name:     name,
		cfg:      cfg,
		costLow:  make([]float64, len(cat.Families)),
		costHigh: make([]float64, len(cat.Families)),
	}
	for i := range cat.Families {
		fam := &cat.Families[i]
		e.costLow[i] = cost.KeepAliveUSDPerMinute(fam.Variants[0].MemoryMB)
		e.costHigh[i] = cost.KeepAliveUSDPerMinute(fam.Variants[fam.NumVariants()-1].MemoryMB)
	}
	return e
}

// Name implements tournament.ShadowEntrant.
func (e *QLearnEntrant) Name() string { return e.name }

// Register implements tournament.ShadowEntrant.
func (e *QLearnEntrant) Register(fn, fam, numVariants int) {
	e.fam = append(e.fam, fam)
	e.highest = append(e.highest, numVariants-1)
	e.idle = append(e.idle, qIdleCap)
	e.rate = append(e.rate, 0)
	e.prevState = append(e.prevState, -1)
	e.prevAction = append(e.prevAction, 0)
}

// Retire implements tournament.ShadowEntrant: the slot's observables
// reset; the shared Q-table keeps what the function taught it.
func (e *QLearnEntrant) Retire(fn int) {
	e.idle[fn] = qIdleCap
	e.rate[fn] = 0
	e.prevState[fn] = -1
}

// stateOf buckets slot fn's observables into a table row.
func (e *QLearnEntrant) stateOf(fn int) int {
	idle := e.idle[fn]
	var ib int
	switch {
	case idle == 0:
		ib = 0
	case idle == 1:
		ib = 1
	case idle == 2:
		ib = 2
	case idle <= 5:
		ib = 3
	case idle <= 10:
		ib = 4
	case idle <= 30:
		ib = 5
	default:
		ib = 6
	}
	r := e.rate[fn]
	var rb int
	switch {
	case r < 0.05:
		rb = 0
	case r < 0.5:
		rb = 1
	case r < 2:
		rb = 2
	case r < 8:
		rb = 3
	default:
		rb = 4
	}
	return ib*qRateBuckets + rb
}

// qhash is a deterministic 64-bit mix of (m, fn) — splitmix64-style — so
// ε-exploration needs no RNG state and is identical on every replay.
func qhash(m, fn int) uint64 {
	z := uint64(m)*0x9E3779B97F4A7C15 + uint64(fn)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// KeepAlive implements tournament.ShadowEntrant: pick the ε-greedy action
// for the open minute and remember it for settlement at the barrier.
func (e *QLearnEntrant) KeepAlive(m, fn int) int {
	s := e.stateOf(fn)
	a := 0
	if h := qhash(m, fn); float64(h%1_000_000) < e.cfg.ExploreEpsilon*1_000_000 {
		a = int((h / 1_000_000) % qActions)
	} else {
		best := e.q[s][0]
		for c := 1; c < qActions; c++ {
			if e.q[s][c] > best {
				best, a = e.q[s][c], c
			}
		}
	}
	e.prevState[fn] = s
	e.prevAction[fn] = a
	switch a {
	case actKeepLow:
		return 0
	case actKeepHigh:
		return e.highest[fn]
	}
	return cluster.NoVariant
}

// Record implements tournament.ShadowEntrant: settle the minute's reward
// and update the table at the barrier.
func (e *QLearnEntrant) Record(m, fn, count int) {
	s, a := e.prevState[fn], e.prevAction[fn]

	if count > 0 {
		e.idle[fn] = 0
	} else if e.idle[fn] < qIdleCap {
		e.idle[fn]++
	}
	e.rate[fn] = qRateEWMA*e.rate[fn] + (1-qRateEWMA)*float64(count)

	if s < 0 {
		return // registered mid-minute: no decision to settle
	}
	fam := e.fam[fn]
	var r float64
	switch a {
	case actKeepLow:
		r = -e.costLow[fam]
	case actKeepHigh:
		r = -e.costHigh[fam]
	}
	if count > 0 && a == actDrop {
		r -= e.cfg.ColdCostMinutes * e.costHigh[fam]
	}
	ns := e.stateOf(fn)
	best := e.q[ns][0]
	for c := 1; c < qActions; c++ {
		if e.q[ns][c] > best {
			best = e.q[ns][c]
		}
	}
	e.q[s][a] += e.cfg.LearnRate * (r + e.cfg.Discount*best - e.q[s][a])
	e.prevState[fn] = -1
}
