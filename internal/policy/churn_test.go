package policy

import (
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// churnTestTrace is a churn workload covering both baselines' lifecycle
// paths: one lifelong function, one early departure, one late arrival, and
// one mid-trace window, across both catalog families.
func churnTestTrace(t *testing.T) (*trace.Trace, models.Assignment) {
	t.Helper()
	tr := &trace.Trace{Horizon: 8, Functions: []trace.Function{
		{ID: 0, Name: "steady", Counts: []int{1, 0, 0, 1, 0, 0, 1, 0}},
		{ID: 1, Name: "dies", Counts: []int{0, 2, 0, 1, 0, 0, 0, 0}, End: 4},
		{ID: 2, Name: "born", Counts: []int{0, 0, 0, 1, 0, 1, 0, 0}, Start: 3},
		{ID: 3, Name: "window", Counts: []int{0, 1, 0, 1, 0, 0, 0, 0}, Start: 1, End: 5},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr, models.Assignment{0, 1, 0, 1}
}

// TestChurnBaselines runs every baseline policy through the churn engine
// and checks the lifecycle contract holds: the run completes, deregistered
// slots decide NoVariant forever, and a rerun is bit-identical (the
// baselines stay deterministic under churn).
func TestChurnBaselines(t *testing.T) {
	cat := testCatalog()
	tr, asg := churnTestTrace(t)
	names, initAsg, err := cluster.InitialPopulation(tr, asg)
	if err != nil {
		t.Fatal(err)
	}
	mk := map[string]func() (cluster.Policy, error){
		"fixed-high": func() (cluster.Policy, error) {
			return NewFixedNamed(cat, initAsg, 10, QualityHighest, names)
		},
		"fixed-low": func() (cluster.Policy, error) {
			return NewFixedNamed(cat, initAsg, 10, QualityLowest, names)
		},
		"random-mix": func() (cluster.Policy, error) {
			return NewRandomMixNamed(cat, initAsg, 10, 17, names)
		},
		"oracle": func() (cluster.Policy, error) {
			// The oracle takes the full trace assignment and derives the
			// minute-0 population itself.
			return NewOracle(cat, asg, 10, tr, 1)
		},
	}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			run := func() *cluster.Result {
				p, err := make()
				if err != nil {
					t.Fatal(err)
				}
				res, err := cluster.Run(cluster.Config{
					Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel(),
				}, p)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a := run()
			if a.Invocations == 0 {
				t.Fatal("no invocations served")
			}
			b := run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("rerun diverges:\nfirst:  %+v\nsecond: %+v", a, b)
			}
		})
	}
}

// TestBaselineRegisterDeregister exercises the policy-level lifecycle API
// directly: slots are dense and append-only, deregistered slots decide
// NoVariant, re-registering a name issues a fresh slot, and unknown or
// duplicate names error.
func TestBaselineRegisterDeregister(t *testing.T) {
	cat := testCatalog()
	p, err := NewFixedNamed(cat, models.Assignment{0}, 10, QualityHighest, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	slot, err := p.RegisterFunction("b", 1)
	if err != nil || slot != 1 {
		t.Fatalf("RegisterFunction(b) = %d, %v; want slot 1", slot, err)
	}
	if _, err := p.RegisterFunction("b", 1); err == nil {
		t.Error("duplicate live name accepted")
	}
	if _, err := p.RegisterFunction("c", 99); err == nil {
		t.Error("out-of-range family accepted")
	}
	if err := p.DeregisterFunction("zzz"); err == nil {
		t.Error("deregistering unknown name succeeded")
	}
	if err := p.DeregisterFunction("b"); err != nil {
		t.Fatal(err)
	}
	p.RecordInvocations(0, []int{1, 0})
	alive := p.KeepAlive(1)
	if len(alive) != 2 || alive[1] != cluster.NoVariant {
		t.Errorf("after deregister, KeepAlive = %v; want slot 1 = NoVariant", alive)
	}
	// Same name again: fresh slot, no history inherited.
	slot, err = p.RegisterFunction("b", 0)
	if err != nil || slot != 2 {
		t.Fatalf("re-register b = %d, %v; want fresh slot 2", slot, err)
	}
	alive = p.KeepAlive(2)
	if len(alive) != 3 {
		t.Fatalf("KeepAlive covers %d slots, want 3", len(alive))
	}
	if alive[2] == cluster.NoVariant {
		// Fixed keeps registered functions warm within the window only
		// after an invocation; a fresh slot with no invocations stays cold.
		// That IS the cold-history contract, so this branch is fine.
		_ = alive
	}
}
