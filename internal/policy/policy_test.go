package policy

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func testCatalog() *models.Catalog {
	return &models.Catalog{Families: []models.Family{
		{
			Name: "A",
			Variants: []models.Variant{
				{Name: "A-lo", AccuracyPct: 70, ExecSec: 1, ColdStartSec: 4, MemoryMB: 256},
				{Name: "A-mid", AccuracyPct: 80, ExecSec: 1.5, ColdStartSec: 6, MemoryMB: 512},
				{Name: "A-hi", AccuracyPct: 90, ExecSec: 2, ColdStartSec: 10, MemoryMB: 1024},
			},
		},
		{
			Name: "B",
			Variants: []models.Variant{
				{Name: "B-lo", AccuracyPct: 60, ExecSec: 0.5, ColdStartSec: 3, MemoryMB: 300},
				{Name: "B-hi", AccuracyPct: 85, ExecSec: 1, ColdStartSec: 8, MemoryMB: 900},
			},
		},
	}}
}

func mkTrace(countsPerFn ...[]int) *trace.Trace {
	tr := &trace.Trace{Horizon: len(countsPerFn[0])}
	for i, c := range countsPerFn {
		tr.Functions = append(tr.Functions, trace.Function{ID: i, Name: "f", Counts: c})
	}
	return tr
}

func TestNewBaseValidation(t *testing.T) {
	cat := testCatalog()
	if _, err := NewFixed(nil, models.Assignment{0}, 10, QualityHighest); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewFixed(cat, models.Assignment{}, 10, QualityHighest); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := NewFixed(cat, models.Assignment{5}, 10, QualityHighest); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	// Non-positive window falls back to the 10-minute default.
	p, err := NewFixed(cat, models.Assignment{0}, 0, QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	if p.window != cluster.DefaultKeepAliveWindow {
		t.Errorf("default window = %d, want %d", p.window, cluster.DefaultKeepAliveWindow)
	}
}

func TestFixedWindowSemantics(t *testing.T) {
	cat := testCatalog()
	p, err := NewFixed(cat, models.Assignment{0}, 10, QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "openwhisk-fixed-high" {
		t.Errorf("name = %q", p.Name())
	}
	// Before any invocation: nothing alive.
	if got := p.KeepAlive(0); got[0] != cluster.NoVariant {
		t.Errorf("pre-invocation alive = %d", got[0])
	}
	// Invocation at minute 2 keeps the container alive through minute 12.
	p.RecordInvocations(2, []int{1})
	for tt := 3; tt <= 12; tt++ {
		if got := p.KeepAlive(tt); got[0] != 2 { // highest variant index
			t.Errorf("minute %d: alive = %d, want 2", tt, got[0])
		}
	}
	if got := p.KeepAlive(13); got[0] != cluster.NoVariant {
		t.Errorf("minute 13: alive = %d, want none", got[0])
	}
	if got := p.ColdVariant(0, 0); got != 2 {
		t.Errorf("cold variant = %d, want 2", got)
	}
}

func TestFixedLowQuality(t *testing.T) {
	cat := testCatalog()
	p, err := NewFixed(cat, models.Assignment{0, 1}, 10, QualityLowest)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "openwhisk-fixed-low" {
		t.Errorf("name = %q", p.Name())
	}
	p.RecordInvocations(0, []int{1, 1})
	got := p.KeepAlive(1)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("low-quality alive = %v, want lowest variants", got)
	}
	if p.ColdVariant(0, 1) != 0 {
		t.Error("cold variant should be lowest")
	}
}

func TestFixedEndToEnd(t *testing.T) {
	cat := testCatalog()
	tr := mkTrace([]int{1, 0, 0, 1, 0}) // second invocation inside window → warm
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: models.Assignment{0}, Cost: cluster.DefaultCostModel()}
	p, err := NewFixed(cat, models.Assignment{0}, 10, QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdStarts != 1 || res.WarmStarts != 1 {
		t.Errorf("cold=%d warm=%d, want 1/1", res.ColdStarts, res.WarmStarts)
	}
	// Keep-alive minutes: 1,2,3,4 (window from invocation at 0, horizon 5).
	wantKaM := []float64{0, 1024, 1024, 1024, 1024}
	for tt, want := range wantKaM {
		if res.PerMinuteKaMMB[tt] != want {
			t.Errorf("KaM[%d] = %v, want %v", tt, res.PerMinuteKaMMB[tt], want)
		}
	}
}

func TestRandomMixBalanced(t *testing.T) {
	cat := testCatalog()
	asg := models.Assignment{0, 1, 0, 1, 0, 1}
	p, err := NewRandomMix(cat, asg, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "random-mix" {
		t.Errorf("name = %q", p.Name())
	}
	high := 0
	for _, h := range p.high {
		if h {
			high++
		}
	}
	if high != 3 {
		t.Errorf("high count = %d, want 3 (balanced)", high)
	}
	// Determinism: same seed, same split.
	q, err := NewRandomMix(cat, asg, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.high {
		if p.high[i] != q.high[i] {
			t.Fatal("same seed produced different splits")
		}
	}
	// Cold variant matches the per-function split.
	for fn := range asg {
		want := 0
		if p.high[fn] {
			want = p.family(fn).NumVariants() - 1
		}
		if got := p.ColdVariant(0, fn); got != want {
			t.Errorf("fn %d cold = %d, want %d", fn, got, want)
		}
	}
}

func TestRandomMixOddCount(t *testing.T) {
	cat := testCatalog()
	p, err := NewRandomMix(cat, models.Assignment{0, 1, 0}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, h := range p.high {
		if h {
			high++
		}
	}
	if high != 2 { // ceil(3/2)
		t.Errorf("high count = %d, want 2", high)
	}
}

func TestOracleChoosesByLookahead(t *testing.T) {
	cat := testCatalog()
	// fn0: invocation at 0 followed by more inside the window → high.
	// fn1: lone invocation at 0, nothing after → low.
	tr := mkTrace(
		[]int{1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		[]int{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	)
	asg := models.Assignment{0, 1}
	p, err := NewOracle(cat, asg, 10, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "oracle-intelligent" {
		t.Errorf("name = %q", p.Name())
	}
	p.RecordInvocations(0, []int{1, 1})
	got := p.KeepAlive(1)
	if got[0] != 2 {
		t.Errorf("fn0 alive = %d, want high (2)", got[0])
	}
	if got[1] != 0 {
		t.Errorf("fn1 alive = %d, want low (0)", got[1])
	}
	// Cold starts run the highest variant.
	if p.ColdVariant(0, 1) != 1 {
		t.Errorf("oracle cold variant = %d, want highest", p.ColdVariant(0, 1))
	}
}

func TestOracleValidation(t *testing.T) {
	cat := testCatalog()
	tr := mkTrace([]int{0})
	if _, err := NewOracle(cat, models.Assignment{0}, 10, nil, 1); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewOracle(cat, models.Assignment{0, 0}, 10, tr, 1); err == nil {
		t.Error("mismatched function count accepted")
	}
	p, err := NewOracle(cat, models.Assignment{0}, 10, tr, -5)
	if err != nil {
		t.Fatal(err)
	}
	if p.threshold != 1 {
		t.Errorf("threshold = %d, want default 1", p.threshold)
	}
}

func TestOracleThresholdGate(t *testing.T) {
	cat := testCatalog()
	// Two future invocations in the window; thresholds 2 and 3 disagree.
	tr := mkTrace([]int{1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	at2, err := NewOracle(cat, models.Assignment{0}, 10, tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	at2.RecordInvocations(0, []int{1})
	if got := at2.KeepAlive(1); got[0] != 2 {
		t.Errorf("threshold 2 with 2 future arrivals: alive = %d, want high", got[0])
	}
	at3, err := NewOracle(cat, models.Assignment{0}, 10, tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	at3.RecordInvocations(0, []int{1})
	if got := at3.KeepAlive(1); got[0] != 0 {
		t.Errorf("threshold 3 with 2 future arrivals: alive = %d, want low", got[0])
	}
}

func TestOracleLookaheadAtTraceEnd(t *testing.T) {
	cat := testCatalog()
	tr := mkTrace([]int{0, 0, 1}) // invocation at the last minute
	p, err := NewOracle(cat, models.Assignment{0}, 10, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Must not read past the horizon.
	p.RecordInvocations(2, []int{1})
	if got := p.KeepAlive(3); got[0] != 0 {
		t.Errorf("end-of-trace choice = %d, want low (no future arrivals)", got[0])
	}
}

// Cost ordering on a shared workload: all-high ≥ random-mix ≥ all-low, and
// the oracle sits between all-low and all-high — the Table II/III ordering.
func TestBaselineCostOrdering(t *testing.T) {
	gen, err := trace.Generate(trace.GeneratorConfig{Seed: 3, Horizon: 2 * trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog()
	asg := make(models.Assignment, len(gen.Functions))
	for i := range asg {
		asg[i] = i % 2
	}
	cfg := cluster.Config{Trace: gen, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}

	run := func(p cluster.Policy) *cluster.Result {
		t.Helper()
		res, err := cluster.Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hi, err := NewFixed(cat, asg, 10, QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewFixed(cat, asg, 10, QualityLowest)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewRandomMix(cat, asg, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewOracle(cat, asg, 10, gen, 1)
	if err != nil {
		t.Fatal(err)
	}
	rHi, rLo, rMix, rOracle := run(hi), run(lo), run(mix), run(oracle)

	if !(rHi.KeepAliveCostUSD > rMix.KeepAliveCostUSD && rMix.KeepAliveCostUSD > rLo.KeepAliveCostUSD) {
		t.Errorf("cost ordering violated: hi=%v mix=%v lo=%v",
			rHi.KeepAliveCostUSD, rMix.KeepAliveCostUSD, rLo.KeepAliveCostUSD)
	}
	if !(rOracle.KeepAliveCostUSD < rHi.KeepAliveCostUSD && rOracle.KeepAliveCostUSD > rLo.KeepAliveCostUSD) {
		t.Errorf("oracle cost %v outside (lo=%v, hi=%v)",
			rOracle.KeepAliveCostUSD, rLo.KeepAliveCostUSD, rHi.KeepAliveCostUSD)
	}
	if !(rHi.MeanAccuracyPct() > rMix.MeanAccuracyPct() && rMix.MeanAccuracyPct() > rLo.MeanAccuracyPct()) {
		t.Errorf("accuracy ordering violated: hi=%v mix=%v lo=%v",
			rHi.MeanAccuracyPct(), rMix.MeanAccuracyPct(), rLo.MeanAccuracyPct())
	}
	// "Intelligent" accuracy beats the random mix (paper: "even closer …
	// to those of high-quality models").
	if rOracle.MeanAccuracyPct() <= rMix.MeanAccuracyPct() {
		t.Errorf("oracle accuracy %v not above random mix %v",
			rOracle.MeanAccuracyPct(), rMix.MeanAccuracyPct())
	}
	// All four approaches deliver the same number of warm starts in the
	// motivation study; with identical windows that holds exactly.
	if rHi.WarmStarts != rLo.WarmStarts || rHi.WarmStarts != rMix.WarmStarts || rHi.WarmStarts != rOracle.WarmStarts {
		t.Errorf("warm starts differ: hi=%d lo=%d mix=%d oracle=%d",
			rHi.WarmStarts, rLo.WarmStarts, rMix.WarmStarts, rOracle.WarmStarts)
	}
}
