package policy

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

func TestHawkesExcitesAndDecays(t *testing.T) {
	h := NewHawkesEntrant("hawkes", HawkesConfig{})
	h.Register(0, 0, 3)

	// Quiet function: baseline intensity alone never justifies keep-alive.
	if v := h.KeepAlive(0, 0); v != cluster.NoVariant {
		t.Fatalf("cold start state keeps variant %d, want none", v)
	}

	// A burst excites the process: the next minutes are held warm on the
	// highest variant.
	h.Record(10, 0, 8)
	if v := h.KeepAlive(11, 0); v != 2 {
		t.Fatalf("post-burst keep-alive = %d, want highest (2)", v)
	}

	// The excitation decays: far enough out, the entrant lets go.
	held := 0
	for m := 11; m < 120; m++ {
		if h.KeepAlive(m, 0) == 2 {
			held++
		} else {
			break
		}
	}
	if held == 0 || held > 60 {
		t.Errorf("burst held warm for %d minutes, want a finite adaptive window", held)
	}

	// A bigger burst holds longer than a smaller one.
	small := NewHawkesEntrant("s", HawkesConfig{})
	big := NewHawkesEntrant("b", HawkesConfig{})
	small.Register(0, 0, 2)
	big.Register(0, 0, 2)
	small.Record(0, 0, 2)
	big.Record(0, 0, 40)
	holdLen := func(h *HawkesEntrant) int {
		n := 0
		for m := 1; m < 240 && h.KeepAlive(m, 0) >= 0; m++ {
			n++
		}
		return n
	}
	if hs, hb := holdLen(small), holdLen(big); hb <= hs {
		t.Errorf("self-excitation not monotone in burst size: small %d, big %d", hs, hb)
	}
}

func TestHawkesRetireResets(t *testing.T) {
	h := NewHawkesEntrant("hawkes", HawkesConfig{})
	h.Register(0, 0, 2)
	h.Record(5, 0, 50)
	if h.KeepAlive(6, 0) < 0 {
		t.Fatal("burst did not excite")
	}
	h.Retire(0)
	if v := h.KeepAlive(6, 0); v != cluster.NoVariant {
		t.Errorf("retired slot still warm: %d", v)
	}
}

func TestHawkesDeterministicReplay(t *testing.T) {
	a := NewHawkesEntrant("a", HawkesConfig{})
	b := NewHawkesEntrant("b", HawkesConfig{})
	a.Register(0, 0, 3)
	b.Register(0, 0, 3)
	counts := []int{0, 3, 0, 0, 7, 1, 0, 0, 0, 2}
	for m, c := range counts {
		if va, vb := a.KeepAlive(m, 0), b.KeepAlive(m, 0); va != vb {
			t.Fatalf("minute %d: decisions diverge (%d vs %d)", m, va, vb)
		}
		a.Record(m, 0, c)
		b.Record(m, 0, c)
	}
}
