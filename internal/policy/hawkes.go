package policy

import (
	"math"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// HawkesEntrant is a tournament shadow policy driven by a self-exciting
// Hawkes process ("Keep-Alive Caching for the Hawkes process"): every
// invocation burst raises the estimated arrival intensity, which then
// decays exponentially, so the keep-alive horizon stretches during flash
// crowds and collapses during quiet periods — a TTL that adapts to
// burstiness instead of being fixed.
//
// Per function the entrant tracks the excitation x and the minute t0 of
// its last update. The conditional intensity at minute m is
//
//	λ(m) = μ + x·e^(−β·(m−t0))
//
// and the probability of ≥1 arrival in the minute is p = 1 − e^(−λ). The
// family's highest variant is held warm exactly when the expected
// cold-start cost of dropping exceeds one minute of keep-alive:
// p·ColdCostMinutes ≥ 1. Expressing the cold-start penalty in keep-alive
// minutes of the same variant cancels the dollar rate, so the policy
// needs no catalog geometry.
//
// It implements the tournament.ShadowEntrant protocol: decisions at the
// open of each minute from history through the previous barrier, state
// updates only in Record — a pure function of the trace.
type HawkesEntrant struct {
	name string
	cfg  HawkesConfig

	x       []float64 // excitation as of t0, per slot
	t0      []int     // minute of the last excitation update, -1 before any
	highest []int     // highest variant index per slot
}

// HawkesConfig parameterizes the intensity estimate.
type HawkesConfig struct {
	// Mu is the baseline arrival intensity (events/minute).
	Mu float64
	// Alpha is the excitation each observed invocation adds.
	Alpha float64
	// Beta is the exponential decay rate of excitation (1/minutes).
	Beta float64
	// ColdCostMinutes expresses one cold start as this many minutes of
	// keep-alive for the same variant.
	ColdCostMinutes float64
}

// DefaultHawkesConfig returns working defaults for minute-resolution
// serverless traces: a near-zero base rate, strong self-excitation with a
// ~5-minute decay half-life, and the repo-wide 15-keep-alive-minutes cold
// start equivalence.
func DefaultHawkesConfig() HawkesConfig {
	return HawkesConfig{Mu: 0.001, Alpha: 0.4, Beta: 0.2, ColdCostMinutes: 15}
}

// NewHawkesEntrant builds the entrant. The zero-value config selects
// DefaultHawkesConfig.
func NewHawkesEntrant(name string, cfg HawkesConfig) *HawkesEntrant {
	if cfg == (HawkesConfig{}) {
		cfg = DefaultHawkesConfig()
	}
	return &HawkesEntrant{name: name, cfg: cfg}
}

// Name implements tournament.ShadowEntrant.
func (h *HawkesEntrant) Name() string { return h.name }

// Register implements tournament.ShadowEntrant.
func (h *HawkesEntrant) Register(fn, fam, numVariants int) {
	h.x = append(h.x, 0)
	h.t0 = append(h.t0, -1)
	h.highest = append(h.highest, numVariants-1)
}

// Retire implements tournament.ShadowEntrant: excitation resets to the
// never-invoked state.
func (h *HawkesEntrant) Retire(fn int) {
	h.x[fn] = 0
	h.t0[fn] = -1
}

// intensity returns λ(m) for slot fn.
func (h *HawkesEntrant) intensity(m, fn int) float64 {
	lam := h.cfg.Mu
	if h.t0[fn] >= 0 {
		lam += h.x[fn] * math.Exp(-h.cfg.Beta*float64(m-h.t0[fn]))
	}
	return lam
}

// KeepAlive implements tournament.ShadowEntrant.
func (h *HawkesEntrant) KeepAlive(m, fn int) int {
	p := 1 - math.Exp(-h.intensity(m, fn))
	if p*h.cfg.ColdCostMinutes >= 1 {
		return h.highest[fn]
	}
	return cluster.NoVariant
}

// Record implements tournament.ShadowEntrant: invocations excite the
// process at the minute barrier. Decay is applied lazily (the exponential
// kernel makes the deferred product exact), so idle minutes cost nothing.
func (h *HawkesEntrant) Record(m, fn, count int) {
	if count <= 0 {
		return
	}
	if h.t0[fn] >= 0 {
		h.x[fn] *= math.Exp(-h.cfg.Beta * float64(m-h.t0[fn]))
	}
	h.x[fn] += h.cfg.Alpha * float64(count)
	h.t0[fn] = m
}
