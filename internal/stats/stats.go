// Package stats provides the small statistical substrate PULSE is built on:
// descriptive statistics, the paper's min–max normalization (Equation 1),
// integer and binned histograms, and rolling windows.
//
// Everything in this package is deterministic and allocation-conscious; the
// simulation engine calls into it on every simulated minute.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (stddev / mean) of xs.
// It returns 0 when the mean is zero, which in PULSE's usage (inter-arrival
// times, always positive when present) only happens on empty input.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs. It returns ErrEmpty when xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty when xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
// It returns ErrEmpty when xs is empty and an error for p outside [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Autocorrelation returns the lag-k autocorrelation of xs, in [-1, 1].
// It returns 0 when the series is too short or has zero variance.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// Clamp01 clamps x into the closed interval [0, 1].
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	case math.IsNaN(x):
		return 0
	default:
		return x
	}
}

// Clamp clamps x into [lo, hi]. It panics if lo > hi, which indicates a
// programming error at the call site.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("stats: Clamp with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// MinMaxNormalize implements the paper's Equation 1. It rescales xs into
// [0, 1] in place-free fashion: the returned slice is freshly allocated.
//
//	x' = (x - min) / (max - min)   when max != min
//	x' = (x - min)                 when max == min (i.e. all zeros)
//
// The degenerate branch matches the paper exactly: when every value is
// equal, every normalized value is 0.
func MinMaxNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if hi == lo {
		// x - min == 0 for every element.
		return out
	}
	span := hi - lo
	for i, x := range xs {
		out[i] = (x - lo) / span
	}
	return out
}

// MinMaxNormalizeInPlace is MinMaxNormalize without the allocation; xs is
// overwritten with its normalized values.
func MinMaxNormalizeInPlace(xs []float64) {
	if len(xs) == 0 {
		return
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if hi == lo {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	span := hi - lo
	for i, x := range xs {
		xs[i] = (x - lo) / span
	}
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lowest index. It returns -1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lowest index. It returns -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
