package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntHistogramBasics(t *testing.T) {
	h := NewIntHistogram()
	if h.Total() != 0 {
		t.Fatalf("new histogram total = %d", h.Total())
	}
	for _, v := range []int{2, 2, 2, 5, 5, 9} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Count(2) != 3 || h.Count(5) != 2 || h.Count(9) != 1 || h.Count(7) != 0 {
		t.Errorf("unexpected counts: %v", h)
	}
	// The paper's example: value appearing 10 times among total → 10/total.
	if got := h.Probability(2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Probability(2) = %v, want 0.5", got)
	}
	if got := h.Probability(404); got != 0 {
		t.Errorf("Probability(absent) = %v, want 0", got)
	}
	vs := h.Values()
	if len(vs) != 3 || vs[0] != 2 || vs[1] != 5 || vs[2] != 9 {
		t.Errorf("Values = %v", vs)
	}
}

func TestIntHistogramAddNegative(t *testing.T) {
	h := NewIntHistogram()
	if err := h.Add(-1); err == nil {
		t.Error("Add(-1) should fail")
	}
}

func TestIntHistogramRemove(t *testing.T) {
	h := NewIntHistogram()
	_ = h.Add(3)
	_ = h.Add(3)
	if err := h.Remove(3); err != nil {
		t.Fatal(err)
	}
	if h.Count(3) != 1 || h.Total() != 1 {
		t.Errorf("after remove: count=%d total=%d", h.Count(3), h.Total())
	}
	if err := h.Remove(3); err != nil {
		t.Fatal(err)
	}
	if h.Count(3) != 0 || h.Total() != 0 {
		t.Errorf("after second remove: count=%d total=%d", h.Count(3), h.Total())
	}
	if err := h.Remove(3); err == nil {
		t.Error("removing absent value should fail")
	}
	if err := h.Remove(99); err == nil {
		t.Error("removing never-seen value should fail")
	}
}

func TestIntHistogramZeroValueUsable(t *testing.T) {
	var h IntHistogram
	if err := h.Add(1); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 {
		t.Errorf("zero-value histogram total = %d", h.Total())
	}
}

func TestIntHistogramMeanCV(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		_ = h.Add(v)
	}
	if got := h.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := h.CV(); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
	empty := NewIntHistogram()
	if empty.Mean() != 0 || empty.CV() != 0 {
		t.Error("empty histogram Mean/CV should be 0")
	}
}

func TestIntHistogramPercentile(t *testing.T) {
	h := NewIntHistogram()
	for v := 1; v <= 100; v++ {
		_ = h.Add(v)
	}
	for _, c := range []struct {
		p    float64
		want int
	}{{1, 1}, {50, 50}, {99, 99}, {100, 100}} {
		got, err := h.Percentile(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if _, err := NewIntHistogram().Percentile(50); err != ErrEmpty {
		t.Errorf("empty percentile err = %v, want ErrEmpty", err)
	}
	if _, err := h.Percentile(-3); err == nil {
		t.Error("negative percentile should fail")
	}
}

func TestIntHistogramCloneReset(t *testing.T) {
	h := NewIntHistogram()
	_ = h.Add(1)
	_ = h.Add(2)
	c := h.Clone()
	_ = c.Add(3)
	if h.Total() != 2 || c.Total() != 3 {
		t.Errorf("clone not independent: h=%d c=%d", h.Total(), c.Total())
	}
	h.Reset()
	if h.Total() != 0 || h.Count(1) != 0 {
		t.Error("Reset did not clear histogram")
	}
	if c.Total() != 3 {
		t.Error("Reset of original affected clone")
	}
}

// Property: probabilities over observed values always sum to 1 for a
// non-empty histogram.
func TestIntHistogramProbabilitySumsToOne(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewIntHistogram()
		for _, v := range raw {
			if err := h.Add(int(v) % 11); err != nil {
				return false
			}
		}
		var sum float64
		for _, v := range h.Values() {
			sum += h.Probability(v)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Add followed by Remove restores the previous state exactly.
func TestIntHistogramAddRemoveRoundTrip(t *testing.T) {
	f := func(raw []uint8, extra uint8) bool {
		h := NewIntHistogram()
		for _, v := range raw {
			_ = h.Add(int(v))
		}
		before := h.Clone()
		v := int(extra)
		_ = h.Add(v)
		_ = h.Remove(v)
		if h.Total() != before.Total() {
			return false
		}
		for _, val := range before.Values() {
			if h.Count(val) != before.Count(val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinnedHistogram(t *testing.T) {
	h, err := NewBinnedHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	bins := h.Bins()
	if bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", bins[0])
	}
	if bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", bins[1])
	}
	if bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", bins[4])
	}
	if h.Samples() != 7 {
		t.Errorf("Samples = %d, want 7", h.Samples())
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestBinnedHistogramErrors(t *testing.T) {
	if _, err := NewBinnedHistogram(5, 5, 3); err == nil {
		t.Error("equal bounds should fail")
	}
	if _, err := NewBinnedHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

// Property: no samples are ever lost — bins + underflow + overflow == Samples.
func TestBinnedHistogramConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, err := NewBinnedHistogram(-5, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		h.Add(rng.NormFloat64() * 4)
	}
	total := h.Underflow() + h.Overflow()
	for _, c := range h.Bins() {
		total += c
	}
	if total != h.Samples() {
		t.Errorf("conservation violated: %d != %d", total, h.Samples())
	}
}
