package stats

import "fmt"

// RollingWindow is a fixed-capacity ring buffer over float64 samples with
// O(1) push and O(1) mean. The PULSE peak detector uses it for the
// "average keep-alive memory over the last local_window minutes" term of
// Algorithm 1, where one sample is pushed per simulated minute.
type RollingWindow struct {
	buf  []float64
	head int // index of the oldest sample
	n    int // number of valid samples
	sum  float64
}

// NewRollingWindow returns a window holding at most capacity samples.
// It panics on non-positive capacity, which is a configuration error.
func NewRollingWindow(capacity int) *RollingWindow {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: NewRollingWindow(%d): capacity must be positive", capacity))
	}
	return &RollingWindow{buf: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest when the window is full.
func (w *RollingWindow) Push(x float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
		w.buf[w.head] = x
		w.head = (w.head + 1) % len(w.buf)
	} else {
		w.buf[(w.head+w.n)%len(w.buf)] = x
		w.n++
	}
	w.sum += x
}

// Len returns the number of samples currently held.
func (w *RollingWindow) Len() int { return w.n }

// Cap returns the window capacity.
func (w *RollingWindow) Cap() int { return len(w.buf) }

// Full reports whether the window holds capacity samples.
func (w *RollingWindow) Full() bool { return w.n == len(w.buf) }

// Mean returns the mean of the held samples, or 0 when empty.
func (w *RollingWindow) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Sum returns the sum of the held samples.
func (w *RollingWindow) Sum() float64 { return w.sum }

// Last returns the most recently pushed sample, or 0 when empty.
func (w *RollingWindow) Last() float64 {
	if w.n == 0 {
		return 0
	}
	return w.buf[(w.head+w.n-1)%len(w.buf)]
}

// At returns the i-th oldest sample (0 = oldest). It panics on an
// out-of-range index.
func (w *RollingWindow) At(i int) float64 {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("stats: RollingWindow.At(%d) with %d samples", i, w.n))
	}
	return w.buf[(w.head+i)%len(w.buf)]
}

// Values returns the held samples oldest-first in a fresh slice.
func (w *RollingWindow) Values() []float64 {
	out := make([]float64, w.n)
	for i := 0; i < w.n; i++ {
		out[i] = w.At(i)
	}
	return out
}

// Reset discards all samples while keeping capacity.
func (w *RollingWindow) Reset() {
	w.head, w.n, w.sum = 0, 0, 0
}
