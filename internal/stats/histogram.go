package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// IntHistogram counts occurrences of small non-negative integers. PULSE uses
// it for inter-arrival times measured in minutes: the paper computes, for
// each inter-arrival value k, the probability count(k)/total.
//
// The zero value is ready to use.
type IntHistogram struct {
	counts map[int]int
	total  int
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int)}
}

// Add records one observation of value v. Negative values are rejected with
// an error since inter-arrival times can never be negative.
func (h *IntHistogram) Add(v int) error {
	if v < 0 {
		return fmt.Errorf("stats: IntHistogram.Add(%d): negative value", v)
	}
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[v]++
	h.total++
	return nil
}

// Remove erases one previously recorded observation of v, used by sliding
// windows when an observation ages out. Removing a value that was never
// added is an error.
func (h *IntHistogram) Remove(v int) error {
	if h.counts[v] <= 0 {
		return fmt.Errorf("stats: IntHistogram.Remove(%d): value not present", v)
	}
	h.counts[v]--
	if h.counts[v] == 0 {
		delete(h.counts, v)
	}
	h.total--
	return nil
}

// Count returns the number of observations of v.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Probability returns count(v)/total, the empirical probability the paper
// uses ("when the inter-arrival time of 2 appears 10 times, we compute the
// probability of 2 as 10 divided by the total number of inter-arrival
// times"). It returns 0 when the histogram is empty.
func (h *IntHistogram) Probability(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Values returns the distinct observed values in ascending order.
func (h *IntHistogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Mean returns the mean observed value, or 0 when empty.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// CV returns the coefficient of variation of the observations, used by the
// Wild predictor to classify heavy-tailed inter-arrival distributions.
func (h *IntHistogram) CV() float64 {
	if h.total == 0 {
		return 0
	}
	m := h.Mean()
	if m == 0 {
		return 0
	}
	var ss float64
	for v, c := range h.counts {
		d := float64(v) - m
		ss += d * d * float64(c)
	}
	return math.Sqrt(ss/float64(h.total)) / m
}

// Percentile returns the p-th percentile of the observed values using the
// nearest-rank method on the expanded multiset. Empty histograms return
// ErrEmpty.
func (h *IntHistogram) Percentile(p float64) (int, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	rank := int(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	cum := 0
	for _, v := range h.Values() {
		cum += h.counts[v]
		if cum >= rank {
			return v, nil
		}
	}
	// Unreachable: cumulative count always reaches total.
	vs := h.Values()
	return vs[len(vs)-1], nil
}

// Clone returns a deep copy of the histogram.
func (h *IntHistogram) Clone() *IntHistogram {
	c := NewIntHistogram()
	for v, n := range h.counts {
		c.counts[v] = n
	}
	c.total = h.total
	return c
}

// Reset discards all observations.
func (h *IntHistogram) Reset() {
	h.counts = make(map[int]int)
	h.total = 0
}

// String renders a compact "value:count" listing for debugging.
func (h *IntHistogram) String() string {
	var b strings.Builder
	b.WriteString("IntHistogram{")
	for i, v := range h.Values() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%d", v, h.counts[v])
	}
	b.WriteString("}")
	return b.String()
}

// BinnedHistogram is a fixed-width binned histogram over float64 samples.
// The experiment harness uses it to reproduce Figure 9(a), the distribution
// of per-decision overhead across simulation runs.
type BinnedHistogram struct {
	lo, hi  float64
	binW    float64
	bins    []int
	under   int
	over    int
	samples int
}

// NewBinnedHistogram creates a histogram over [lo, hi) with n equal bins.
// It returns an error for invalid bounds or non-positive n.
func NewBinnedHistogram(lo, hi float64, n int) (*BinnedHistogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram bounds [%v, %v)", lo, hi)
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", n)
	}
	return &BinnedHistogram{
		lo:   lo,
		hi:   hi,
		binW: (hi - lo) / float64(n),
		bins: make([]int, n),
	}, nil
}

// Add records a sample. Out-of-range samples are tallied in the underflow or
// overflow counters rather than dropped.
func (h *BinnedHistogram) Add(x float64) {
	h.samples++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.binW)
		if i >= len(h.bins) { // guard against floating-point edge at hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Bins returns a copy of the per-bin counts.
func (h *BinnedHistogram) Bins() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// BinCenter returns the center value of bin i.
func (h *BinnedHistogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.binW
}

// Underflow and Overflow return the out-of-range tallies.
func (h *BinnedHistogram) Underflow() int { return h.under }

// Overflow returns the count of samples at or above the upper bound.
func (h *BinnedHistogram) Overflow() int { return h.over }

// Samples returns the total number of Add calls.
func (h *BinnedHistogram) Samples() int { return h.samples }
