package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRollingWindowBasics(t *testing.T) {
	w := NewRollingWindow(3)
	if w.Len() != 0 || w.Cap() != 3 || w.Full() {
		t.Fatalf("fresh window: len=%d cap=%d full=%v", w.Len(), w.Cap(), w.Full())
	}
	if w.Mean() != 0 || w.Last() != 0 {
		t.Error("empty window Mean/Last should be 0")
	}
	w.Push(1)
	w.Push(2)
	if w.Mean() != 1.5 || w.Last() != 2 {
		t.Errorf("mean=%v last=%v", w.Mean(), w.Last())
	}
	w.Push(3)
	if !w.Full() {
		t.Error("window should be full")
	}
	w.Push(4) // evicts 1
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
	if w.Mean() != 3 { // (2+3+4)/3
		t.Errorf("Mean = %v, want 3", w.Mean())
	}
	if w.Sum() != 9 {
		t.Errorf("Sum = %v, want 9", w.Sum())
	}
	vals := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("Values = %v, want %v", vals, want)
			break
		}
	}
	if w.At(0) != 2 || w.At(2) != 4 {
		t.Errorf("At(0)=%v At(2)=%v", w.At(0), w.At(2))
	}
}

func TestRollingWindowPanics(t *testing.T) {
	for _, cap := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRollingWindow(%d) should panic", cap)
				}
			}()
			NewRollingWindow(cap)
		}()
	}
	w := NewRollingWindow(2)
	w.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("At out of range should panic")
		}
	}()
	w.At(1)
}

func TestRollingWindowReset(t *testing.T) {
	w := NewRollingWindow(2)
	w.Push(5)
	w.Push(6)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear window")
	}
	w.Push(9)
	if w.Mean() != 9 {
		t.Errorf("window unusable after Reset: mean=%v", w.Mean())
	}
}

// Property: the window mean always equals the mean of its Values(), and the
// values are the last min(cap, pushed) samples in order.
func TestRollingWindowMatchesNaive(t *testing.T) {
	f := func(raw []float64, capSeed uint8) bool {
		capacity := int(capSeed)%8 + 1
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 1
			}
			// Keep magnitudes small so the incremental sum stays exact enough.
			raw[i] = math.Mod(raw[i], 1000)
		}
		w := NewRollingWindow(capacity)
		for _, x := range raw {
			w.Push(x)
		}
		start := len(raw) - capacity
		if start < 0 {
			start = 0
		}
		expect := raw[start:]
		if w.Len() != len(expect) {
			return false
		}
		for i, want := range expect {
			if w.At(i) != want {
				return false
			}
		}
		if len(expect) > 0 {
			if math.Abs(w.Mean()-Mean(expect)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRollingWindowPush(b *testing.B) {
	w := NewRollingWindow(60)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(xs[i%len(xs)])
	}
}
