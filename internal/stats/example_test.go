package stats_test

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/stats"
)

// ExampleMinMaxNormalize shows the paper's Equation 1, including its
// degenerate all-equal branch.
func ExampleMinMaxNormalize() {
	fmt.Println(stats.MinMaxNormalize([]float64{2, 4, 6}))
	fmt.Println(stats.MinMaxNormalize([]float64{7, 7, 7}))
	// Output:
	// [0 0.5 1]
	// [0 0 0]
}

// ExampleIntHistogram computes the inter-arrival probabilities PULSE's
// function-centric optimizer is built on.
func ExampleIntHistogram() {
	h := stats.NewIntHistogram()
	for _, gap := range []int{2, 2, 2, 5} {
		if err := h.Add(gap); err != nil {
			panic(err)
		}
	}
	fmt.Printf("P(gap=2) = %.2f\n", h.Probability(2))
	fmt.Printf("P(gap=5) = %.2f\n", h.Probability(5))
	fmt.Printf("P(gap=9) = %.2f\n", h.Probability(9))
	// Output:
	// P(gap=2) = 0.75
	// P(gap=5) = 0.25
	// P(gap=9) = 0.00
}

// ExampleRollingWindow shows the sliding average behind Algorithm 1's
// local-window prior.
func ExampleRollingWindow() {
	w := stats.NewRollingWindow(3)
	for _, kam := range []float64{100, 200, 300, 400} {
		w.Push(kam)
	}
	fmt.Println("window:", w.Values())
	fmt.Println("mean:", w.Mean())
	// Output:
	// window: [200 300 400]
	// mean: 300
}
