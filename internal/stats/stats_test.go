package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSumMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		sum  float64
		mean float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 3},
		{"mixed", []float64{1, 2, 3, 4}, 10, 2.5},
		{"negative", []float64{-1, 1}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Sum(c.in); got != c.sum {
				t.Errorf("Sum = %v, want %v", got, c.sum)
			}
			if got := Mean(c.in); got != c.mean {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CV of constants = %v, want 0", got)
	}
	if got := CV(nil); got != 0 {
		t.Errorf("CV of empty = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, std 2
	if got := CV(xs); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	xs := []float64{3, -1, 7, 0}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", hi, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	for _, c := range []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
	// Input must not be reordered.
	orig := []float64{9, 1, 5}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Errorf("Percentile mutated its input: %v", orig)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{1, 3, 2})
	if err != nil || got != 2 {
		t.Errorf("Median = %v, %v; want 2, nil", got, err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A perfectly periodic series has autocorrelation ~1 at its period.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 10)
	}
	if got := Autocorrelation(xs, 10); got < 0.9 {
		t.Errorf("lag-10 autocorrelation of period-10 sine = %v, want >0.9", got)
	}
	if got := Autocorrelation(xs, 5); got > -0.9 {
		t.Errorf("lag-5 autocorrelation of period-10 sine = %v, want < -0.9", got)
	}
	if got := Autocorrelation([]float64{1, 1, 1}, 1); got != 0 {
		t.Errorf("autocorrelation of constants = %v, want 0", got)
	}
	if got := Autocorrelation(xs, 0); got != 0 {
		t.Errorf("lag-0 should return 0 sentinel, got %v", got)
	}
	if got := Autocorrelation(xs, len(xs)); got != 0 {
		t.Errorf("lag >= len should return 0, got %v", got)
	}
}

func TestClamp01(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {math.NaN(), 0},
	} {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v, want 3", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp(-5,0,3) = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp with lo > hi should panic")
		}
	}()
	Clamp(1, 3, 0)
}

func TestMinMaxNormalize(t *testing.T) {
	got := MinMaxNormalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Degenerate branch of Equation 1: all-equal input maps to all zeros.
	got = MinMaxNormalize([]float64{7, 7, 7})
	for i, v := range got {
		if v != 0 {
			t.Errorf("degenerate normalize[%d] = %v, want 0", i, v)
		}
	}
	if got := MinMaxNormalize(nil); len(got) != 0 {
		t.Errorf("normalize(nil) len = %d, want 0", len(got))
	}
}

// Property: normalization output is always within [0,1] and preserves order.
func TestMinMaxNormalizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		// Replace NaN/Inf inputs: Equation 1 is only defined on finite data.
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		out := MinMaxNormalize(xs)
		if len(out) != len(xs) {
			return false
		}
		for i, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			for j := range out {
				if xs[i] < xs[j] && out[i] > out[j] {
					return false // order must be preserved
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxNormalizeInPlace(t *testing.T) {
	xs := []float64{10, 20, 30}
	MinMaxNormalizeInPlace(xs)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Errorf("in-place normalize[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	ys := []float64{4, 4}
	MinMaxNormalizeInPlace(ys)
	if ys[0] != 0 || ys[1] != 0 {
		t.Errorf("degenerate in-place normalize = %v, want zeros", ys)
	}
	MinMaxNormalizeInPlace(nil) // must not panic
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := ArgMin(xs); got != 1 {
		t.Errorf("ArgMin = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Errorf("ArgMax = %d, want 4", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d, want -1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("Percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func BenchmarkMinMaxNormalizeInPlace(b *testing.B) {
	xs := make([]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinMaxNormalizeInPlace(xs)
	}
}
