package predict

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/stats"
)

// Warmer decides, per minute, whether a function's container should be
// warm. It is the prediction half of a warm-up strategy: the policy
// wrappers (policies.go) decide which model variant fills the warm slot.
type Warmer interface {
	// Name identifies the strategy in reports.
	Name() string
	// Record informs the warmer of count invocations of fn at minute t.
	Record(t, fn, count int)
	// WantWarm reports whether fn should be warm during minute t. It is
	// called with non-decreasing t.
	WantWarm(t, fn int) bool
}

// WildConfig parameterizes the Serverless-in-the-Wild warmer.
type WildConfig struct {
	// PreWarmPercentile and KeepAlivePercentile bound the warm window
	// around the histogram's inter-arrival distribution. Wild's defaults
	// are the 5th and 99th percentiles.
	PreWarmPercentile   float64
	KeepAlivePercentile float64
	// CVCutoff classifies a function's inter-arrival distribution as
	// heavy-tailed ("not representative"), routing it to the ARIMA path.
	// Wild uses an out-of-bounds/representativeness test; CV captures the
	// same heavy-tail property on our minute-resolution histograms.
	CVCutoff float64
	// MinObservations gates the histogram path; with fewer observations
	// the function falls back to a standard fixed keep-alive window.
	MinObservations int
	// FallbackWindow is the fixed keep-alive window (minutes) used before
	// enough history accumulates.
	FallbackWindow int
	// ARIMAHistory is how many recent inter-arrivals feed the ARIMA fit.
	ARIMAHistory int
	// ARIMAMargin widens the predicted-arrival warm window by ± this many
	// minutes.
	ARIMAMargin int
	// HistogramRange bounds the inter-arrival histogram in minutes (Wild
	// uses a 4-hour bounded histogram); larger gaps count as out-of-bounds
	// rather than entering the histogram.
	HistogramRange int
	// OOBFraction is the out-of-bounds share above which the histogram is
	// deemed unrepresentative and the function falls back to the fixed
	// window.
	OOBFraction float64
}

// DefaultWildConfig returns Wild's published defaults adapted to minute
// resolution.
func DefaultWildConfig() WildConfig {
	return WildConfig{
		PreWarmPercentile:   5,
		KeepAlivePercentile: 99,
		CVCutoff:            2.0,
		MinObservations:     10,
		FallbackWindow:      10,
		ARIMAHistory:        64,
		ARIMAMargin:         3,
		HistogramRange:      240,
		OOBFraction:         0.5,
	}
}

// Wild implements the hybrid-histogram warmer of Serverless in the Wild:
// per function it tracks the inter-arrival histogram; when the histogram is
// representative it releases the container right after an invocation and
// re-warms it from the pre-warm percentile until the keep-alive percentile
// of the inter-arrival distribution; heavy-tailed functions instead get an
// ARIMA(2,1,1) forecast of the next inter-arrival with a ± margin window.
type Wild struct {
	cfg    WildConfig
	hist   []*stats.IntHistogram
	oob    []int       // gaps beyond the bounded histogram range, per function
	gaps   [][]float64 // recent inter-arrival values per function (ARIMA input)
	last   []int       // last invocation minute per function, -1 before any
	warmLo []int       // current warm window [lo, hi] in absolute minutes
	warmHi []int
}

// NewWild builds the warmer for nFunctions functions.
func NewWild(nFunctions int, cfg WildConfig) (*Wild, error) {
	if nFunctions <= 0 {
		return nil, fmt.Errorf("predict: need ≥1 function, got %d", nFunctions)
	}
	if cfg.PreWarmPercentile < 0 || cfg.KeepAlivePercentile > 100 ||
		cfg.PreWarmPercentile >= cfg.KeepAlivePercentile {
		return nil, fmt.Errorf("predict: bad percentile window [%v, %v]",
			cfg.PreWarmPercentile, cfg.KeepAlivePercentile)
	}
	if cfg.FallbackWindow <= 0 {
		return nil, fmt.Errorf("predict: non-positive fallback window %d", cfg.FallbackWindow)
	}
	if cfg.MinObservations < 2 {
		return nil, fmt.Errorf("predict: MinObservations must be ≥ 2, got %d", cfg.MinObservations)
	}
	if cfg.HistogramRange <= 0 {
		return nil, fmt.Errorf("predict: non-positive histogram range %d", cfg.HistogramRange)
	}
	if cfg.OOBFraction <= 0 || cfg.OOBFraction > 1 {
		return nil, fmt.Errorf("predict: OOB fraction %v outside (0,1]", cfg.OOBFraction)
	}
	w := &Wild{
		cfg:    cfg,
		hist:   make([]*stats.IntHistogram, nFunctions),
		oob:    make([]int, nFunctions),
		gaps:   make([][]float64, nFunctions),
		last:   make([]int, nFunctions),
		warmLo: make([]int, nFunctions),
		warmHi: make([]int, nFunctions),
	}
	for i := range w.hist {
		w.hist[i] = stats.NewIntHistogram()
		w.last[i] = -1
		w.warmLo[i] = -1
		w.warmHi[i] = -1
	}
	return w, nil
}

// Name implements Warmer.
func (w *Wild) Name() string { return "wild" }

// Record implements Warmer: on each invocation the inter-arrival enters the
// histogram and the warm window for the next arrival is recomputed.
func (w *Wild) Record(t, fn, count int) {
	if count <= 0 || fn < 0 || fn >= len(w.hist) {
		return
	}
	if w.last[fn] >= 0 {
		gap := t - w.last[fn]
		if gap > 0 {
			if gap <= w.cfg.HistogramRange {
				// Gaps are positive by construction, so Add cannot fail.
				if err := w.hist[fn].Add(gap); err != nil {
					panic("predict: wild histogram: " + err.Error())
				}
			} else {
				w.oob[fn]++
			}
			w.gaps[fn] = append(w.gaps[fn], float64(gap))
			if len(w.gaps[fn]) > w.cfg.ARIMAHistory {
				w.gaps[fn] = w.gaps[fn][len(w.gaps[fn])-w.cfg.ARIMAHistory:]
			}
		}
	}
	w.last[fn] = t
	w.planWindow(t, fn)
}

// planWindow recomputes the warm window opened by an invocation at minute t.
func (w *Wild) planWindow(t, fn int) {
	h := w.hist[fn]
	oobShare := 0.0
	if n := h.Total() + w.oob[fn]; n > 0 {
		oobShare = float64(w.oob[fn]) / float64(n)
	}
	if h.Total() < w.cfg.MinObservations || oobShare > w.cfg.OOBFraction {
		// Not enough in-range history to be representative: standard
		// fixed keep-alive.
		w.warmLo[fn] = t + 1
		w.warmHi[fn] = t + w.cfg.FallbackWindow
		return
	}
	if h.CV() > w.cfg.CVCutoff {
		// Heavy-tailed: ARIMA forecast of the next inter-arrival.
		if next, ok := w.arimaNextGap(fn); ok {
			lo := t + next - w.cfg.ARIMAMargin
			if lo < t+1 {
				lo = t + 1
			}
			w.warmLo[fn] = lo
			w.warmHi[fn] = t + next + w.cfg.ARIMAMargin
			return
		}
		// Fit failed (e.g. constant history): fall through to percentiles.
	}
	lo, err := h.Percentile(w.cfg.PreWarmPercentile)
	if err != nil {
		lo = 1
	}
	hi, err := h.Percentile(w.cfg.KeepAlivePercentile)
	if err != nil {
		hi = w.cfg.FallbackWindow
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	w.warmLo[fn] = t + lo
	w.warmHi[fn] = t + hi
}

// arimaNextGap forecasts the next inter-arrival gap with ARIMA(2,1,1).
func (w *Wild) arimaNextGap(fn int) (int, bool) {
	series := w.gaps[fn]
	m, err := FitARIMA(series, 2, 1, 1)
	if err != nil {
		return 0, false
	}
	fc, err := m.Forecast(1)
	if err != nil || len(fc) != 1 {
		return 0, false
	}
	next := int(fc[0] + 0.5)
	if next < 1 {
		next = 1
	}
	return next, true
}

// WantWarm implements Warmer.
func (w *Wild) WantWarm(t, fn int) bool {
	if fn < 0 || fn >= len(w.warmLo) || w.warmLo[fn] < 0 {
		return false
	}
	return t >= w.warmLo[fn] && t <= w.warmHi[fn]
}

// WindowFor exposes the current warm window of fn (for tests/reports);
// ok is false before the function's first invocation.
func (w *Wild) WindowFor(fn int) (lo, hi int, ok bool) {
	if fn < 0 || fn >= len(w.warmLo) || w.warmLo[fn] < 0 {
		return 0, 0, false
	}
	return w.warmLo[fn], w.warmHi[fn], true
}
