package predict

import (
	"fmt"
	"math"
)

// HoltWinters implements additive triple exponential smoothing — level,
// trend, and a daily seasonal profile — over per-minute invocation counts.
// It is not one of the paper's two comparison techniques; it is the
// "different keep-alive durations / other predictors" extension the paper's
// discussion invites, and slots into the same Warmer interface so it can be
// evaluated standalone or PULSE-integrated like Wild and IceBreaker.
type HoltWinters struct {
	cfg     HWConfig
	level   []float64
	trend   []float64
	season  [][]float64 // per function: one slot per minute of the season
	seen    []int       // samples observed per function
	lastInv []int
}

// HWConfig parameterizes the smoother.
type HWConfig struct {
	// Alpha, Beta, Gamma are the level, trend, and seasonal smoothing
	// factors, each in (0, 1).
	Alpha, Beta, Gamma float64
	// SeasonLength is the seasonal period in minutes (default one day).
	SeasonLength int
	// ActivationThreshold pre-warms a function when its one-step forecast
	// is at or above it.
	ActivationThreshold float64
	// PostInvocationWindow keeps a function warm this many minutes after
	// an actual invocation, covering forecast misses.
	PostInvocationWindow int
}

// DefaultHWConfig returns working defaults for minute-resolution traces.
func DefaultHWConfig() HWConfig {
	return HWConfig{
		Alpha:                0.3,
		Beta:                 0.05,
		Gamma:                0.2,
		SeasonLength:         24 * 60,
		ActivationThreshold:  0.5,
		PostInvocationWindow: 3,
	}
}

// validate checks the smoothing parameters, shared by NewHoltWinters and
// the MPC entrant (which grows its forecaster slot by slot instead of
// sizing it up front).
func (cfg HWConfig) validate() error {
	for name, v := range map[string]float64{"alpha": cfg.Alpha, "beta": cfg.Beta, "gamma": cfg.Gamma} {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("predict: %s %v outside (0,1)", name, v)
		}
	}
	if cfg.SeasonLength < 2 {
		return fmt.Errorf("predict: season length %d too short", cfg.SeasonLength)
	}
	if cfg.ActivationThreshold <= 0 {
		return fmt.Errorf("predict: non-positive activation threshold %v", cfg.ActivationThreshold)
	}
	if cfg.PostInvocationWindow < 0 {
		return fmt.Errorf("predict: negative post-invocation window")
	}
	return nil
}

// NewHoltWinters builds the warmer for nFunctions functions.
func NewHoltWinters(nFunctions int, cfg HWConfig) (*HoltWinters, error) {
	if nFunctions <= 0 {
		return nil, fmt.Errorf("predict: need ≥1 function, got %d", nFunctions)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hw := &HoltWinters{
		cfg:     cfg,
		level:   make([]float64, nFunctions),
		trend:   make([]float64, nFunctions),
		season:  make([][]float64, nFunctions),
		seen:    make([]int, nFunctions),
		lastInv: make([]int, nFunctions),
	}
	for i := range hw.season {
		hw.season[i] = make([]float64, cfg.SeasonLength)
		hw.lastInv[i] = -1
	}
	return hw, nil
}

// Name implements Warmer.
func (hw *HoltWinters) Name() string { return "holtwinters" }

// Record implements Warmer: one observation per function per minute.
func (hw *HoltWinters) Record(t, fn, count int) {
	if fn < 0 || fn >= len(hw.level) {
		return
	}
	if count > 0 {
		hw.lastInv[fn] = t
	}
	x := float64(count)
	si := t % hw.cfg.SeasonLength
	if hw.seen[fn] == 0 {
		hw.level[fn] = x
		hw.season[fn][si] = 0
		hw.seen[fn]++
		return
	}
	prevLevel := hw.level[fn]
	seas := hw.season[fn][si]
	hw.level[fn] = hw.cfg.Alpha*(x-seas) + (1-hw.cfg.Alpha)*(prevLevel+hw.trend[fn])
	hw.trend[fn] = hw.cfg.Beta*(hw.level[fn]-prevLevel) + (1-hw.cfg.Beta)*hw.trend[fn]
	hw.season[fn][si] = hw.cfg.Gamma*(x-hw.level[fn]) + (1-hw.cfg.Gamma)*seas
	hw.seen[fn]++
}

// Forecast returns the expected invocation count of fn at absolute minute
// t (clamped at zero), assuming observations have been recorded up to some
// minute before t.
func (hw *HoltWinters) Forecast(t, fn int) float64 {
	if fn < 0 || fn >= len(hw.level) || hw.seen[fn] == 0 {
		return 0
	}
	v := hw.level[fn] + hw.trend[fn] + hw.season[fn][t%hw.cfg.SeasonLength]
	return math.Max(0, v)
}

// WantWarm implements Warmer.
func (hw *HoltWinters) WantWarm(t, fn int) bool {
	if fn < 0 || fn >= len(hw.level) {
		return false
	}
	if last := hw.lastInv[fn]; last >= 0 && t > last && t-last <= hw.cfg.PostInvocationWindow {
		return true
	}
	return hw.Forecast(t, fn) >= hw.cfg.ActivationThreshold
}
