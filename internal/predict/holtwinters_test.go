package predict

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func TestNewHoltWintersValidation(t *testing.T) {
	cfg := DefaultHWConfig()
	if _, err := NewHoltWinters(0, cfg); err == nil {
		t.Error("zero functions accepted")
	}
	for _, mut := range []func(*HWConfig){
		func(c *HWConfig) { c.Alpha = 0 },
		func(c *HWConfig) { c.Alpha = 1 },
		func(c *HWConfig) { c.Beta = -0.1 },
		func(c *HWConfig) { c.Gamma = 1.5 },
		func(c *HWConfig) { c.SeasonLength = 1 },
		func(c *HWConfig) { c.ActivationThreshold = 0 },
		func(c *HWConfig) { c.PostInvocationWindow = -1 },
	} {
		bad := DefaultHWConfig()
		mut(&bad)
		if _, err := NewHoltWinters(1, bad); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
}

func TestHoltWintersLearnsSeasonalPattern(t *testing.T) {
	cfg := DefaultHWConfig()
	cfg.SeasonLength = 60 // one-hour "day" keeps the test small
	cfg.PostInvocationWindow = 0
	hw, err := NewHoltWinters(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bursts of 3 at minute 30 of every hour, across 30 "days".
	for tt := 0; tt < 30*60; tt++ {
		c := 0
		if tt%60 == 30 {
			c = 3
		}
		hw.Record(tt, 0, c)
	}
	next := 30 * 60
	atBurst := hw.Forecast(next+30-(next%60), 0) // the next minute-30 slot
	quiet := hw.Forecast(next+10-(next%60), 0)
	if atBurst < 1 {
		t.Errorf("forecast at burst slot = %v, want ≥1", atBurst)
	}
	if quiet > 0.4 {
		t.Errorf("forecast at quiet slot = %v, want near 0", quiet)
	}
	if !hw.WantWarm(next+30, 0) {
		t.Error("not warm at predicted burst slot")
	}
	if hw.WantWarm(next+10, 0) {
		t.Error("warm at quiet slot")
	}
}

func TestHoltWintersPostInvocationWindow(t *testing.T) {
	cfg := DefaultHWConfig()
	cfg.PostInvocationWindow = 2
	hw, err := NewHoltWinters(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 10; tt++ {
		hw.Record(tt, 0, 0)
	}
	hw.Record(10, 0, 1)
	if !hw.WantWarm(11, 0) || !hw.WantWarm(12, 0) {
		t.Error("post-invocation window not honored")
	}
	if hw.WantWarm(10, 0) {
		t.Error("warm at the invocation minute itself (t > last required)")
	}
}

func TestHoltWintersBounds(t *testing.T) {
	hw, err := NewHoltWinters(2, DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range functions are ignored, never panic.
	hw.Record(0, -1, 5)
	hw.Record(0, 9, 5)
	if hw.Forecast(0, 9) != 0 || hw.Forecast(0, -1) != 0 {
		t.Error("unknown function forecast nonzero")
	}
	if hw.WantWarm(0, 9) {
		t.Error("unknown function warm")
	}
	// Forecast before any observation is zero.
	if hw.Forecast(5, 0) != 0 {
		t.Error("forecast before data nonzero")
	}
	// Forecasts are never negative even with decaying trends.
	for tt := 0; tt < 100; tt++ {
		c := 10 - tt/10
		if c < 0 {
			c = 0
		}
		hw.Record(tt, 0, c)
	}
	for tt := 100; tt < 200; tt++ {
		if hw.Forecast(tt, 0) < 0 {
			t.Fatalf("negative forecast at %d", tt)
		}
	}
}

// Holt-Winters as a full policy: standalone and PULSE-integrated runs
// complete, and the integration reduces keep-alive cost.
func TestHoltWintersEndToEnd(t *testing.T) {
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 88, Horizon: 2 * trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	cfg := cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}

	hw1, err := NewHoltWinters(len(asg), DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := NewStandalonePolicy(hw1, cat, asg)
	if err != nil {
		t.Fatal(err)
	}
	rStandalone, err := cluster.Run(cfg, standalone)
	if err != nil {
		t.Fatal(err)
	}
	if rStandalone.Invocations == 0 || rStandalone.WarmStarts == 0 {
		t.Fatal("standalone Holt-Winters produced no activity")
	}

	hw2, err := NewHoltWinters(len(asg), DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	integrated, err := NewIntegratedPolicy(hw2, cat, asg, IntegratedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if integrated.Name() != "holtwinters+pulse" {
		t.Errorf("name = %q", integrated.Name())
	}
	rIntegrated, err := cluster.Run(cfg, integrated)
	if err != nil {
		t.Fatal(err)
	}
	if rIntegrated.KeepAliveCostUSD >= rStandalone.KeepAliveCostUSD {
		t.Errorf("integration did not reduce cost: %v vs %v",
			rIntegrated.KeepAliveCostUSD, rStandalone.KeepAliveCostUSD)
	}
}
