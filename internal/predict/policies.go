package predict

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
)

// StandalonePolicy wraps a Warmer into a cluster.Policy the way the
// original techniques deploy: whenever the warmer wants a function warm,
// the container holds the high-quality model ("the conventional practice of
// invoking high-quality models indiscriminately"), with no model-variant
// awareness and no memory constraint.
type StandalonePolicy struct {
	warmer     Warmer
	catalog    *models.Catalog
	assignment models.Assignment
	out        []int
}

// NewStandalonePolicy builds the variant-unaware wrapper.
func NewStandalonePolicy(w Warmer, cat *models.Catalog, asg models.Assignment) (*StandalonePolicy, error) {
	if w == nil {
		return nil, fmt.Errorf("predict: nil warmer")
	}
	if cat == nil {
		return nil, fmt.Errorf("predict: nil catalog")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := asg.Validate(cat, len(asg)); err != nil {
		return nil, err
	}
	if len(asg) == 0 {
		return nil, fmt.Errorf("predict: empty assignment")
	}
	return &StandalonePolicy{
		warmer:     w,
		catalog:    cat,
		assignment: asg,
		out:        make([]int, len(asg)),
	}, nil
}

// Name implements cluster.Policy.
func (p *StandalonePolicy) Name() string { return p.warmer.Name() + "-standalone" }

// KeepAlive implements cluster.Policy.
func (p *StandalonePolicy) KeepAlive(t int) []int {
	for fn := range p.out {
		if p.warmer.WantWarm(t, fn) {
			p.out[fn] = p.catalog.Families[p.assignment[fn]].NumVariants() - 1
		} else {
			p.out[fn] = cluster.NoVariant
		}
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *StandalonePolicy) ColdVariant(_, fn int) int {
	return p.catalog.Families[p.assignment[fn]].NumVariants() - 1
}

// RecordInvocations implements cluster.Policy.
func (p *StandalonePolicy) RecordInvocations(t int, counts []int) {
	for fn, c := range counts {
		p.warmer.Record(t, fn, c)
	}
}

// IntegratedPolicy is the Figure 8 configuration: the warmer's prediction
// decides *when* a function is warm ("this integration preserves Wild's
// predicted concurrency"), while PULSE's function-centric optimizer decides
// *which* variant fills the slot and PULSE's global optimizer enforces the
// keep-alive memory constraint the original techniques lack.
type IntegratedPolicy struct {
	warmer     Warmer
	catalog    *models.Catalog
	assignment models.Assignment
	window     int
	technique  core.ThresholdTechnique
	blend      core.HistoryBlend
	histories  []*core.History
	detector   *core.PeakDetector
	global     *core.GlobalOptimizer
	out        []int
	ip         []float64

	totalDowngrades int
}

// IntegratedConfig parameterizes the PULSE side of the integration. Zero
// values take PULSE defaults.
type IntegratedConfig struct {
	Window       int
	LocalWindow  int
	KaMThreshold float64
	Technique    core.ThresholdTechnique
	Blend        core.HistoryBlend
	Step         core.DowngradeStep
}

// NewIntegratedPolicy builds the warmer+PULSE hybrid.
func NewIntegratedPolicy(w Warmer, cat *models.Catalog, asg models.Assignment, cfg IntegratedConfig) (*IntegratedPolicy, error) {
	if w == nil {
		return nil, fmt.Errorf("predict: nil warmer")
	}
	if cat == nil {
		return nil, fmt.Errorf("predict: nil catalog")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if err := asg.Validate(cat, len(asg)); err != nil {
		return nil, err
	}
	if len(asg) == 0 {
		return nil, fmt.Errorf("predict: empty assignment")
	}
	if cfg.Window <= 0 {
		cfg.Window = cluster.DefaultKeepAliveWindow
	}
	if cfg.LocalWindow <= 0 {
		cfg.LocalWindow = 60
	}
	if cfg.KaMThreshold <= 0 {
		cfg.KaMThreshold = 0.10
	}
	if cfg.Technique == nil {
		cfg.Technique = core.TechniqueT1{}
	}
	p := &IntegratedPolicy{
		warmer:     w,
		catalog:    cat,
		assignment: asg,
		window:     cfg.Window,
		technique:  cfg.Technique,
		blend:      cfg.Blend,
		histories:  make([]*core.History, len(asg)),
		out:        make([]int, len(asg)),
		ip:         make([]float64, len(asg)),
	}
	var err error
	for i := range p.histories {
		if p.histories[i], err = core.NewHistory(cfg.LocalWindow); err != nil {
			return nil, err
		}
	}
	if p.detector, err = core.NewPeakDetector(cfg.KaMThreshold, cfg.LocalWindow, core.PriorAlgorithm1); err != nil {
		return nil, err
	}
	if p.global, err = core.NewGlobalOptimizer(cat, asg, cfg.Step, false); err != nil {
		return nil, err
	}
	return p, nil
}

// Name implements cluster.Policy.
func (p *IntegratedPolicy) Name() string { return p.warmer.Name() + "+pulse" }

// TotalDowngrades returns Algorithm 2 downgrades applied so far.
func (p *IntegratedPolicy) TotalDowngrades() int { return p.totalDowngrades }

// KeepAlive implements cluster.Policy: the warmer gates which functions are
// warm; PULSE's probability thresholds choose the variant; Algorithm 1+2
// flatten memory peaks.
func (p *IntegratedPolicy) KeepAlive(t int) []int {
	for fn := range p.out {
		if !p.warmer.WantWarm(t, fn) {
			p.out[fn] = cluster.NoVariant
			p.ip[fn] = 0
			continue
		}
		h := p.histories[fn]
		prob := 0.0
		if last := h.LastInvocation(); last >= 0 && t > last && t-last <= p.window {
			prob = h.Probability(t-last, p.blend)
		}
		fam := p.catalog.Families[p.assignment[fn]]
		p.out[fn] = p.technique.Select(prob, fam.NumVariants())
		p.ip[fn] = prob
	}
	kam, err := p.global.KeptAliveMemoryMB(p.out)
	if err != nil {
		panic("predict: invalid integrated decisions: " + err.Error())
	}
	if p.detector.IsPeak(kam) {
		downs, err := p.global.Flatten(p.out, p.ip, p.detector.FlattenTarget())
		if err != nil {
			panic("predict: flatten: " + err.Error())
		}
		p.totalDowngrades += len(downs)
		if kam, err = p.global.KeptAliveMemoryMB(p.out); err != nil {
			panic("predict: post-flatten memory: " + err.Error())
		}
	}
	if err := p.detector.Record(kam); err != nil {
		panic("predict: detector: " + err.Error())
	}
	return p.out
}

// ColdVariant implements cluster.Policy.
func (p *IntegratedPolicy) ColdVariant(_, fn int) int {
	return p.catalog.Families[p.assignment[fn]].NumVariants() - 1
}

// RecordInvocations implements cluster.Policy.
func (p *IntegratedPolicy) RecordInvocations(t int, counts []int) {
	for fn, c := range counts {
		p.warmer.Record(t, fn, c)
		if c > 0 {
			if err := p.histories[fn].Record(t); err != nil {
				panic("predict: history: " + err.Error())
			}
		}
	}
}
