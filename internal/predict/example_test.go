package predict_test

import (
	"fmt"
	"log"

	"github.com/pulse-serverless/pulse/internal/predict"
)

// ExampleFitARIMA fits an ARIMA model to a trending series and forecasts
// ahead — the path Serverless-in-the-Wild takes for heavy-tailed functions.
func ExampleFitARIMA() {
	// Inter-arrival gaps drifting upward.
	series := make([]float64, 80)
	for i := range series {
		series[i] = 10 + float64(i)/4
	}
	m, err := predict.FitARIMA(series, 1, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fc, err := m.Forecast(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next gaps ≈ %.0f, %.0f minutes\n", fc[0], fc[1])
	// Output:
	// next gaps ≈ 30, 30 minutes
}

// ExampleWild shows the hybrid-histogram warm window: after enough regular
// history, the warmer pre-warms exactly around the predicted arrival
// instead of holding the container for a blanket 10 minutes.
func ExampleWild() {
	cfg := predict.DefaultWildConfig()
	cfg.MinObservations = 5
	w, err := predict.NewWild(1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Invocations every 20 minutes.
	for t := 0; t <= 200; t += 20 {
		w.Record(t, 0, 1)
	}
	lo, hi, _ := w.WindowFor(0)
	fmt.Printf("after invocation at 200: warm window [%d, %d]\n", lo, hi)
	fmt.Println("warm at 210:", w.WantWarm(210, 0))
	fmt.Println("warm at 220:", w.WantWarm(220, 0))
	// Output:
	// after invocation at 200: warm window [220, 220]
	// warm at 210: false
	// warm at 220: true
}
