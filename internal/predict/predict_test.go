package predict

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func TestNewWildValidation(t *testing.T) {
	cfg := DefaultWildConfig()
	if _, err := NewWild(0, cfg); err == nil {
		t.Error("zero functions accepted")
	}
	bad := cfg
	bad.PreWarmPercentile = 99
	bad.KeepAlivePercentile = 5
	if _, err := NewWild(1, bad); err == nil {
		t.Error("inverted percentiles accepted")
	}
	bad = cfg
	bad.FallbackWindow = 0
	if _, err := NewWild(1, bad); err == nil {
		t.Error("zero fallback window accepted")
	}
	bad = cfg
	bad.MinObservations = 1
	if _, err := NewWild(1, bad); err == nil {
		t.Error("MinObservations 1 accepted")
	}
}

func TestWildFallbackWindow(t *testing.T) {
	w, err := NewWild(1, DefaultWildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w.WantWarm(0, 0) {
		t.Error("warm before any invocation")
	}
	if _, _, ok := w.WindowFor(0); ok {
		t.Error("window exists before any invocation")
	}
	w.Record(5, 0, 1)
	// Too little history: fixed fallback window [6, 15].
	lo, hi, ok := w.WindowFor(0)
	if !ok || lo != 6 || hi != 15 {
		t.Errorf("fallback window = [%d, %d] %v, want [6, 15]", lo, hi, ok)
	}
	if !w.WantWarm(6, 0) || !w.WantWarm(15, 0) {
		t.Error("not warm inside fallback window")
	}
	if w.WantWarm(16, 0) || w.WantWarm(5, 0) {
		t.Error("warm outside fallback window")
	}
	// Out-of-range functions are simply never warm.
	if w.WantWarm(6, 9) {
		t.Error("unknown function warm")
	}
	w.Record(6, 9, 1) // must not panic
}

func TestWildPercentileWindow(t *testing.T) {
	cfg := DefaultWildConfig()
	cfg.MinObservations = 5
	w, err := NewWild(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Regular gaps of exactly 7 minutes.
	tt := 0
	for i := 0; i < 20; i++ {
		w.Record(tt, 0, 1)
		tt += 7
	}
	last := tt - 7
	lo, hi, ok := w.WindowFor(0)
	if !ok {
		t.Fatal("no window")
	}
	// All gaps are 7: both percentiles are 7, so the window collapses to
	// the predicted arrival minute — the histogram path's precision win.
	if lo != last+7 || hi != last+7 {
		t.Errorf("window = [%d, %d], want [%d, %d]", lo, hi, last+7, last+7)
	}
	if !w.WantWarm(last+7, 0) {
		t.Error("not warm at predicted arrival")
	}
	if w.WantWarm(last+3, 0) {
		t.Error("warm long before predicted arrival (keep-alive waste)")
	}
}

func TestWildHeavyTailUsesARIMA(t *testing.T) {
	cfg := DefaultWildConfig()
	cfg.MinObservations = 5
	cfg.CVCutoff = 0.5 // force the ARIMA path for moderately varying gaps
	w, err := NewWild(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alternating small/large gaps produce CV > 0.5 and enough history
	// for the ARIMA(2,1,1) fit.
	tt := 0
	gaps := []int{2, 40}
	for i := 0; i < 60; i++ {
		w.Record(tt, 0, 1)
		tt += gaps[i%2]
	}
	lo, hi, ok := w.WindowFor(0)
	if !ok {
		t.Fatal("no window")
	}
	if hi < lo {
		t.Errorf("inverted ARIMA window [%d, %d]", lo, hi)
	}
	// The window must be bounded by the margin (±3 around the forecast),
	// not the 99th-percentile span of 40.
	if hi-lo > 2*cfg.ARIMAMargin {
		t.Errorf("ARIMA window [%d, %d] wider than margin allows", lo, hi)
	}
}

func TestNewIceBreakerValidation(t *testing.T) {
	cfg := DefaultIceBreakerConfig()
	if _, err := NewIceBreaker(0, cfg); err == nil {
		t.Error("zero functions accepted")
	}
	bad := cfg
	bad.HistoryMinutes = 4
	if _, err := NewIceBreaker(1, bad); err == nil {
		t.Error("tiny history accepted")
	}
	bad = cfg
	bad.RefitInterval = 0
	if _, err := NewIceBreaker(1, bad); err == nil {
		t.Error("zero refit interval accepted")
	}
	bad = cfg
	bad.ActivationThreshold = 0
	if _, err := NewIceBreaker(1, bad); err == nil {
		t.Error("zero activation threshold accepted")
	}
	bad = cfg
	bad.WarmupMinutes = -1
	if _, err := NewIceBreaker(1, bad); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestIceBreakerPredictsPeriodicPattern(t *testing.T) {
	cfg := DefaultIceBreakerConfig()
	cfg.HistoryMinutes = 240
	cfg.RefitInterval = 20
	cfg.PostInvocationWindow = 0
	cfg.WarmupMinutes = 0
	ib, err := NewIceBreaker(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Strong period-20 pattern: bursts of 4 invocations every 20 minutes.
	for tt := 0; tt < 400; tt++ {
		c := 0
		if tt%20 == 0 {
			c = 4
		}
		ib.Record(tt, 0, c)
	}
	// After 400 minutes of history the forecast should mark the next
	// burst minute warm and quiet mid-cycle minutes cold.
	warmAtBurst := ib.WantWarm(400, 0)
	coldMid := ib.WantWarm(410, 0)
	if !warmAtBurst {
		t.Error("not warm at predicted burst minute")
	}
	if coldMid {
		t.Error("warm at quiet mid-cycle minute")
	}
	if ib.WantWarm(400, 5) {
		t.Error("unknown function warm")
	}
}

func TestIceBreakerPostInvocationWindow(t *testing.T) {
	cfg := DefaultIceBreakerConfig()
	cfg.HistoryMinutes = 64
	cfg.PostInvocationWindow = 3
	ib, err := NewIceBreaker(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 20; tt++ {
		ib.Record(tt, 0, 0)
	}
	ib.Record(20, 0, 1)
	for _, tt := range []int{21, 22, 23} {
		if !ib.WantWarm(tt, 0) {
			t.Errorf("minute %d should be inside the post-invocation window", tt)
		}
	}
	if ib.WantWarm(24, 0) && ib.predictedCount(24, 0) < cfg.ActivationThreshold {
		t.Error("warm past the post-invocation window without forecast support")
	}
}

func integrationSetup(t *testing.T) (*trace.Trace, *models.Catalog, models.Assignment, cluster.Config) {
	t.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 77, Horizon: 2 * trace.MinutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	cat := models.PaperCatalog()
	asg := make(models.Assignment, len(tr.Functions))
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	return tr, cat, asg, cluster.Config{Trace: tr, Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()}
}

func TestStandalonePolicyValidation(t *testing.T) {
	cat := models.PaperCatalog()
	w, _ := NewWild(1, DefaultWildConfig())
	if _, err := NewStandalonePolicy(nil, cat, models.Assignment{0}); err == nil {
		t.Error("nil warmer accepted")
	}
	if _, err := NewStandalonePolicy(w, nil, models.Assignment{0}); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewStandalonePolicy(w, cat, models.Assignment{}); err == nil {
		t.Error("empty assignment accepted")
	}
}

func TestIntegratedPolicyValidation(t *testing.T) {
	cat := models.PaperCatalog()
	w, _ := NewWild(1, DefaultWildConfig())
	if _, err := NewIntegratedPolicy(nil, cat, models.Assignment{0}, IntegratedConfig{}); err == nil {
		t.Error("nil warmer accepted")
	}
	if _, err := NewIntegratedPolicy(w, nil, models.Assignment{0}, IntegratedConfig{}); err == nil {
		t.Error("nil catalog accepted")
	}
	p, err := NewIntegratedPolicy(w, cat, models.Assignment{0}, IntegratedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "wild+pulse" {
		t.Errorf("name = %q", p.Name())
	}
}

// Figure 8's shape for Wild: integrating PULSE slashes keep-alive cost with
// a small accuracy drop.
func TestWildIntegrationReducesCost(t *testing.T) {
	tr, cat, asg, cfg := integrationSetup(t)
	_ = tr

	wStandalone, err := NewWild(len(asg), DefaultWildConfig())
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := NewStandalonePolicy(wStandalone, cat, asg)
	if err != nil {
		t.Fatal(err)
	}
	rStandalone, err := cluster.Run(cfg, standalone)
	if err != nil {
		t.Fatal(err)
	}

	wIntegrated, err := NewWild(len(asg), DefaultWildConfig())
	if err != nil {
		t.Fatal(err)
	}
	integrated, err := NewIntegratedPolicy(wIntegrated, cat, asg, IntegratedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rIntegrated, err := cluster.Run(cfg, integrated)
	if err != nil {
		t.Fatal(err)
	}

	if rIntegrated.KeepAliveCostUSD >= rStandalone.KeepAliveCostUSD {
		t.Errorf("integration did not reduce cost: %v vs %v",
			rIntegrated.KeepAliveCostUSD, rStandalone.KeepAliveCostUSD)
	}
	drop := rStandalone.MeanAccuracyPct() - rIntegrated.MeanAccuracyPct()
	if drop > 10 {
		t.Errorf("integration accuracy drop %.2f%% too large", drop)
	}
	// Warm/cold behaviour is identical by construction (same warmer).
	if rIntegrated.WarmStarts != rStandalone.WarmStarts {
		t.Errorf("warm starts changed: %d vs %d", rIntegrated.WarmStarts, rStandalone.WarmStarts)
	}
}

// Figure 8's shape for IceBreaker: cost reduction with small accuracy drop.
func TestIceBreakerIntegrationReducesCost(t *testing.T) {
	_, cat, asg, cfg := integrationSetup(t)

	ibStandalone, err := NewIceBreaker(len(asg), DefaultIceBreakerConfig())
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := NewStandalonePolicy(ibStandalone, cat, asg)
	if err != nil {
		t.Fatal(err)
	}
	rStandalone, err := cluster.Run(cfg, standalone)
	if err != nil {
		t.Fatal(err)
	}

	ibIntegrated, err := NewIceBreaker(len(asg), DefaultIceBreakerConfig())
	if err != nil {
		t.Fatal(err)
	}
	integrated, err := NewIntegratedPolicy(ibIntegrated, cat, asg, IntegratedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rIntegrated, err := cluster.Run(cfg, integrated)
	if err != nil {
		t.Fatal(err)
	}

	if rIntegrated.KeepAliveCostUSD >= rStandalone.KeepAliveCostUSD {
		t.Errorf("integration did not reduce cost: %v vs %v",
			rIntegrated.KeepAliveCostUSD, rStandalone.KeepAliveCostUSD)
	}
	drop := rStandalone.MeanAccuracyPct() - rIntegrated.MeanAccuracyPct()
	if drop > 10 {
		t.Errorf("integration accuracy drop %.2f%% too large", drop)
	}
}

// Wild's reason to exist: its histogram windows deliver a higher warm-start
// rate than the fixed 10-minute policy (it keeps functions warm through
// their actual inter-arrival range, not an arbitrary 10 minutes).
func TestWildBeatsFixedOnWarmRate(t *testing.T) {
	_, cat, asg, cfg := integrationSetup(t)

	w, err := NewWild(len(asg), DefaultWildConfig())
	if err != nil {
		t.Fatal(err)
	}
	wildPolicy, err := NewStandalonePolicy(w, cat, asg)
	if err != nil {
		t.Fatal(err)
	}
	rWild, err := cluster.Run(cfg, wildPolicy)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := policy.NewFixed(cat, asg, 10, policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	rOW, err := cluster.Run(cfg, ow)
	if err != nil {
		t.Fatal(err)
	}
	if rWild.WarmStartRate() <= rOW.WarmStartRate() {
		t.Errorf("Wild warm rate %.3f not above fixed policy %.3f",
			rWild.WarmStartRate(), rOW.WarmStartRate())
	}
}

func TestIntegratedPolicyUsesPulseVariants(t *testing.T) {
	cat := models.PaperCatalog()
	asg := models.Assignment{0} // GPT: 3 variants
	w, err := NewWild(1, DefaultWildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A very high memory threshold disables peak flattening so the test
	// isolates the variant-selection path (a single alternating function
	// is all sawtooth, which Algorithm 1 would otherwise clip).
	p, err := NewIntegratedPolicy(w, cat, asg, IntegratedConfig{Technique: core.TechniqueT1{}, KaMThreshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Build a strong period-2 pattern so PULSE's probability at offset 2
	// is 1 → highest variant, while Wild's fallback window wants it warm.
	tt := 0
	for i := 0; i < 30; i++ {
		p.KeepAlive(tt)
		p.RecordInvocations(tt, []int{1})
		p.KeepAlive(tt + 1)
		p.RecordInvocations(tt+1, []int{0})
		tt += 2
	}
	alive := p.KeepAlive(tt) // offset 2 from last invocation at tt-2
	if alive[0] != 2 {
		t.Errorf("integrated variant at hot offset = %d, want highest", alive[0])
	}
}
