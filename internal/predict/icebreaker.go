package predict

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/fft"
)

// IceBreakerConfig parameterizes the FFT-based warmer.
type IceBreakerConfig struct {
	// HistoryMinutes is the sliding observation window the spectrum is
	// computed over (default: one day at minute resolution).
	HistoryMinutes int
	// RefitInterval is how often (minutes) the harmonic model is refit.
	RefitInterval int
	// TopHarmonics bounds how many dominant harmonics are kept.
	TopHarmonics int
	// ActivationThreshold is the forecast invocation count above which the
	// function is predicted active and pre-warmed.
	ActivationThreshold float64
	// PostInvocationWindow keeps a function warm this many minutes after
	// an actual (possibly unpredicted) invocation, covering forecast
	// misses.
	PostInvocationWindow int
	// WarmupMinutes sometimes historians call "fencing": the model warms a
	// function this many minutes before each predicted-active minute so
	// the container is ready when the invocation lands.
	WarmupMinutes int
}

// DefaultIceBreakerConfig returns working defaults for minute-resolution
// traces.
func DefaultIceBreakerConfig() IceBreakerConfig {
	return IceBreakerConfig{
		HistoryMinutes:       24 * 60,
		RefitInterval:        60,
		TopHarmonics:         8,
		ActivationThreshold:  0.5,
		PostInvocationWindow: 3,
		WarmupMinutes:        1,
	}
}

// IceBreaker implements the FFT warmer: per function it maintains the
// recent invocation-count series, periodically extracts the dominant
// harmonics, and pre-warms the function during minutes where the harmonic
// extrapolation predicts invocations. A short post-invocation window covers
// forecast misses. Node heterogeneity (IceBreaker's utility function) is
// out of scope per the paper's methodology ("we used only one type of node
// … eliminating the need for utility function computation").
type IceBreaker struct {
	cfg      IceBreakerConfig
	counts   [][]float64 // ring of recent per-minute counts, per function
	head     []int       // next write index into the ring
	filled   []bool      // ring has wrapped at least once
	lastInv  []int
	forecast [][]float64 // predicted counts for [fitMinute+1, fitMinute+RefitInterval]
	fitAt    []int       // minute the current forecast was produced
}

// NewIceBreaker builds the warmer for nFunctions functions.
func NewIceBreaker(nFunctions int, cfg IceBreakerConfig) (*IceBreaker, error) {
	if nFunctions <= 0 {
		return nil, fmt.Errorf("predict: need ≥1 function, got %d", nFunctions)
	}
	if cfg.HistoryMinutes < 16 {
		return nil, fmt.Errorf("predict: history of %d minutes too short for spectral analysis", cfg.HistoryMinutes)
	}
	if cfg.RefitInterval <= 0 {
		return nil, fmt.Errorf("predict: non-positive refit interval %d", cfg.RefitInterval)
	}
	if cfg.ActivationThreshold <= 0 {
		return nil, fmt.Errorf("predict: non-positive activation threshold %v", cfg.ActivationThreshold)
	}
	if cfg.PostInvocationWindow < 0 || cfg.WarmupMinutes < 0 {
		return nil, fmt.Errorf("predict: negative window in config")
	}
	ib := &IceBreaker{
		cfg:      cfg,
		counts:   make([][]float64, nFunctions),
		head:     make([]int, nFunctions),
		filled:   make([]bool, nFunctions),
		lastInv:  make([]int, nFunctions),
		forecast: make([][]float64, nFunctions),
		fitAt:    make([]int, nFunctions),
	}
	for i := range ib.counts {
		ib.counts[i] = make([]float64, cfg.HistoryMinutes)
		ib.lastInv[i] = -1
		ib.fitAt[i] = -1
	}
	return ib, nil
}

// Name implements Warmer.
func (ib *IceBreaker) Name() string { return "icebreaker" }

// Record implements Warmer. It must be called once per function per minute
// (count may be zero) so the count series stays dense; the policy wrappers
// guarantee that.
func (ib *IceBreaker) Record(t, fn, count int) {
	if fn < 0 || fn >= len(ib.counts) {
		return
	}
	ring := ib.counts[fn]
	ring[ib.head[fn]] = float64(count)
	ib.head[fn]++
	if ib.head[fn] == len(ring) {
		ib.head[fn] = 0
		ib.filled[fn] = true
	}
	if count > 0 {
		ib.lastInv[fn] = t
	}
	// Refit the harmonic model on schedule once the ring has data.
	if ib.fitAt[fn] < 0 || t-ib.fitAt[fn] >= ib.cfg.RefitInterval {
		ib.refit(t, fn)
	}
}

// refit recomputes the harmonic forecast for fn at minute t.
func (ib *IceBreaker) refit(t, fn int) {
	series := ib.series(fn)
	if len(series) < 16 {
		return
	}
	mean, hs := fft.Spectrum(series)
	fc, err := fft.Extrapolate(mean, hs, len(series), ib.cfg.RefitInterval+ib.cfg.WarmupMinutes+1, ib.cfg.TopHarmonics)
	if err != nil {
		return
	}
	ib.forecast[fn] = fc
	ib.fitAt[fn] = t
}

// series returns the dense recent count series, oldest first.
func (ib *IceBreaker) series(fn int) []float64 {
	ring := ib.counts[fn]
	if !ib.filled[fn] {
		return ring[:ib.head[fn]]
	}
	out := make([]float64, len(ring))
	n := copy(out, ring[ib.head[fn]:])
	copy(out[n:], ring[:ib.head[fn]])
	return out
}

// predictedCount returns the forecast invocation count at absolute minute
// t, or 0 when no forecast covers it.
func (ib *IceBreaker) predictedCount(t, fn int) float64 {
	fc := ib.forecast[fn]
	if fc == nil || ib.fitAt[fn] < 0 {
		return 0
	}
	idx := t - ib.fitAt[fn] - 1
	if idx < 0 || idx >= len(fc) {
		return 0
	}
	return fc[idx]
}

// WantWarm implements Warmer: warm when the harmonic forecast predicts
// activity at t (or within the warm-up lead), or within the short window
// after an actual invocation.
func (ib *IceBreaker) WantWarm(t, fn int) bool {
	if fn < 0 || fn >= len(ib.counts) {
		return false
	}
	if last := ib.lastInv[fn]; last >= 0 && t-last <= ib.cfg.PostInvocationWindow && t > last {
		return true
	}
	for lead := 0; lead <= ib.cfg.WarmupMinutes; lead++ {
		if ib.predictedCount(t+lead, fn) >= ib.cfg.ActivationThreshold {
			return true
		}
	}
	return false
}
