// Package predict implements the state-of-the-art serverless warm-up
// strategies the paper integrates PULSE with:
//
//   - Serverless in the Wild [Shahrad et al., ATC'20]: a hybrid
//     inter-arrival histogram with percentile pre-warm/keep-alive windows,
//     falling back to an ARIMA forecast for heavy-tailed functions;
//   - IceBreaker [Roy et al., ASPLOS'22]: an FFT-based invocation forecast
//     (single node class per the PULSE methodology, so no node-selection
//     utility function).
//
// Both are exposed as Warmers (deciding *when* a function should be warm)
// and wrapped into cluster policies either standalone (always the
// high-quality variant, as the originals are model-variant-unaware) or
// integrated with PULSE's function-centric and global optimization, which
// is the Figure 8 experiment.
package predict

import (
	"fmt"
	"math"
)

// ARIMA is an ARIMA(p,d,q) model fit by the Hannan–Rissanen procedure:
// a long autoregression estimates the innovations, then the AR and MA
// coefficients come from one least-squares regression on lagged values and
// lagged innovations. This is the classical two-stage estimator; it needs
// no numerical optimizer and is deterministic.
type ARIMA struct {
	P, D, Q   int
	Phi       []float64 // AR coefficients φ₁..φ_p
	Theta     []float64 // MA coefficients θ₁..θ_q
	Intercept float64

	diffed []float64 // differenced series the model was fit on
	resid  []float64 // in-sample innovations (aligned with diffed)
	orig   []float64 // original series tail needed to undifference forecasts
}

// FitARIMA fits an ARIMA(p,d,q) model to the series. The series must be
// long enough to support the requested orders.
func FitARIMA(series []float64, p, d, q int) (*ARIMA, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("predict: negative ARIMA order (%d,%d,%d)", p, d, q)
	}
	if p == 0 && q == 0 {
		return nil, fmt.Errorf("predict: ARIMA needs p+q ≥ 1")
	}
	w := difference(series, d)
	// The long-AR stage needs max(20, p+q+5) lags of headroom.
	longOrder := p + q + 5
	if longOrder < 8 {
		longOrder = 8
	}
	minLen := longOrder + p + q + 10
	if len(w) < minLen {
		return nil, fmt.Errorf("predict: series of %d too short for ARIMA(%d,%d,%d), need ≥ %d after differencing",
			len(series), p, d, q, minLen+d)
	}

	m := &ARIMA{P: p, D: d, Q: q, diffed: w}
	m.orig = append([]float64(nil), series...)

	// Stage 1: long autoregression to estimate innovations.
	longPhi, longIntercept, err := fitAR(w, longOrder)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, len(w))
	for t := longOrder; t < len(w); t++ {
		pred := longIntercept
		for k := 0; k < longOrder; k++ {
			pred += longPhi[k] * w[t-1-k]
		}
		resid[t] = w[t] - pred
	}
	m.resid = resid

	// Stage 2: regress w_t on its p lags and q lagged innovations.
	start := longOrder + max(p, q)
	rows := len(w) - start
	cols := 1 + p + q
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := start + i
		row := make([]float64, cols)
		row[0] = 1
		for k := 0; k < p; k++ {
			row[1+k] = w[t-1-k]
		}
		for k := 0; k < q; k++ {
			row[1+p+k] = resid[t-1-k]
		}
		x[i] = row
		y[i] = w[t]
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return nil, fmt.Errorf("predict: ARIMA stage-2 regression: %w", err)
	}
	m.Intercept = beta[0]
	m.Phi = beta[1 : 1+p]
	m.Theta = beta[1+p:]
	return m, nil
}

// Forecast extrapolates h steps beyond the fitted series, undoing the
// differencing so forecasts are on the original scale.
func (m *ARIMA) Forecast(h int) ([]float64, error) {
	if h < 0 {
		return nil, fmt.Errorf("predict: negative horizon %d", h)
	}
	w := m.diffed
	resid := m.resid
	// Extended differenced series; future innovations are zero in
	// expectation.
	ext := append([]float64(nil), w...)
	extResid := append([]float64(nil), resid...)
	for step := 0; step < h; step++ {
		t := len(ext)
		pred := m.Intercept
		for k := 0; k < m.P; k++ {
			idx := t - 1 - k
			if idx >= 0 {
				pred += m.Phi[k] * ext[idx]
			}
		}
		for k := 0; k < m.Q; k++ {
			idx := t - 1 - k
			if idx >= 0 {
				pred += m.Theta[k] * extResid[idx]
			}
		}
		ext = append(ext, pred)
		extResid = append(extResid, 0)
	}
	// Undifference the forecast tail d times against the original series.
	fc := ext[len(w):]
	return undifference(fc, m.orig, m.D), nil
}

// difference applies the d-th order difference to the series.
func difference(series []float64, d int) []float64 {
	w := append([]float64(nil), series...)
	for i := 0; i < d; i++ {
		if len(w) < 2 {
			return nil
		}
		next := make([]float64, len(w)-1)
		for t := 1; t < len(w); t++ {
			next[t-1] = w[t] - w[t-1]
		}
		w = next
	}
	return w
}

// undifference integrates a forecast of the d-times-differenced series back
// to the original scale, using the tail of the original series as the
// integration constants.
func undifference(fc []float64, orig []float64, d int) []float64 {
	if d == 0 {
		return append([]float64(nil), fc...)
	}
	// Build the ladder of last values at each differencing level.
	levels := make([][]float64, d+1)
	levels[0] = orig
	for i := 1; i <= d; i++ {
		levels[i] = difference(orig, i)
	}
	last := make([]float64, d+1) // last[i] = final value at difference level i
	for i := 0; i <= d; i++ {
		if len(levels[i]) == 0 {
			last[i] = 0
		} else {
			last[i] = levels[i][len(levels[i])-1]
		}
	}
	out := make([]float64, len(fc))
	for step, v := range fc {
		// v is the next value at level d; integrate up to level 0.
		for lvl := d - 1; lvl >= 0; lvl-- {
			v = last[lvl] + v
			last[lvl] = v
		}
		out[step] = v
	}
	return out
}

// fitAR fits an AR(k) model with intercept by least squares.
func fitAR(w []float64, k int) (phi []float64, intercept float64, err error) {
	if len(w) <= k+1 {
		return nil, 0, fmt.Errorf("predict: series too short for AR(%d)", k)
	}
	rows := len(w) - k
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := k + i
		row := make([]float64, k+1)
		row[0] = 1
		for j := 0; j < k; j++ {
			row[1+j] = w[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return nil, 0, fmt.Errorf("predict: AR(%d) regression: %w", k, err)
	}
	return beta[1:], beta[0], nil
}

// leastSquares solves min ‖Xβ − y‖² via the normal equations with partial
// pivoting. Rank-deficient designs get a tiny ridge to stay solvable (the
// workload series this package sees are frequently constant over stretches).
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("predict: bad regression shape %d×? vs %d", len(x), len(y))
	}
	n := len(x[0])
	if len(x) < n {
		return nil, fmt.Errorf("predict: underdetermined regression: %d rows, %d cols", len(x), n)
	}
	// Form XᵀX and Xᵀy.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
	}
	for r := range x {
		if len(x[r]) != n {
			return nil, fmt.Errorf("predict: ragged design matrix")
		}
		for i := 0; i < n; i++ {
			b[i] += x[r][i] * y[r]
			for j := i; j < n; j++ {
				a[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
		a[i][i] += 1e-9 // ridge for rank deficiency
	}
	return solveLinear(a, b)
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// a and b are modified.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("predict: bad linear system shape")
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("predict: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	xs := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * xs[j]
		}
		xs[i] = s / a[i][i]
	}
	return xs, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
