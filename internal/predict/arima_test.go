package predict

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitARIMAValidation(t *testing.T) {
	series := make([]float64, 100)
	if _, err := FitARIMA(series, -1, 0, 1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := FitARIMA(series, 0, 0, 0); err == nil {
		t.Error("p=q=0 accepted")
	}
	if _, err := FitARIMA(make([]float64, 5), 2, 0, 1); err == nil {
		t.Error("too-short series accepted")
	}
}

func TestARRecoversCoefficients(t *testing.T) {
	// Simulate AR(2): x_t = 0.6 x_{t-1} − 0.2 x_{t-2} + ε.
	rng := rand.New(rand.NewSource(1))
	n := 4000
	x := make([]float64, n)
	for tt := 2; tt < n; tt++ {
		x[tt] = 0.6*x[tt-1] - 0.2*x[tt-2] + rng.NormFloat64()
	}
	m, err := FitARIMA(x, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.6) > 0.1 {
		t.Errorf("phi1 = %v, want ≈0.6", m.Phi[0])
	}
	if math.Abs(m.Phi[1]+0.2) > 0.1 {
		t.Errorf("phi2 = %v, want ≈−0.2", m.Phi[1])
	}
}

func TestARIMAForecastTrend(t *testing.T) {
	// Linear trend: first difference is constant, so ARIMA(1,1,1) should
	// continue the trend closely.
	n := 120
	x := make([]float64, n)
	for i := range x {
		x[i] = 5 + 2*float64(i)
	}
	m, err := FitARIMA(x, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fc {
		want := 5 + 2*float64(n+i)
		if math.Abs(v-want) > 2 {
			t.Errorf("forecast[%d] = %v, want ≈%v", i, v, want)
		}
	}
}

func TestARIMAForecastMeanReversion(t *testing.T) {
	// Stationary AR(1) around mean 10: long-horizon forecasts approach 10.
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x := make([]float64, n)
	x[0] = 10
	for tt := 1; tt < n; tt++ {
		x[tt] = 10 + 0.5*(x[tt-1]-10) + 0.2*rng.NormFloat64()
	}
	m, err := FitARIMA(x, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc[49]-10) > 1 {
		t.Errorf("long-horizon forecast = %v, want ≈10", fc[49])
	}
	if _, err := m.Forecast(-1); err == nil {
		t.Error("negative horizon accepted")
	}
	if fc, err := m.Forecast(0); err != nil || len(fc) != 0 {
		t.Error("zero horizon should return empty forecast")
	}
}

func TestDifferenceUndifferenceRoundTrip(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for d := 0; d <= 2; d++ {
		w := difference(x, d)
		if len(w) != len(x)-d {
			t.Fatalf("d=%d: differenced length %d", d, len(w))
		}
	}
	// Undifferencing the true future differences reproduces the future.
	full := []float64{1, 4, 9, 16, 25, 36, 49}
	hist := full[:5]
	for d := 0; d <= 2; d++ {
		wFull := difference(full, d)
		wHist := difference(hist, d)
		futureDiffs := wFull[len(wHist):]
		got := undifference(futureDiffs, hist, d)
		want := full[5:]
		if len(got) != len(want) {
			t.Fatalf("d=%d: got %d values", d, len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("d=%d: undiff[%d] = %v, want %v", d, i, got[i], want[i])
			}
		}
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	xs, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xs[0]-1) > 1e-9 || math.Abs(xs[1]-3) > 1e-9 {
		t.Errorf("solution = %v, want [1 3]", xs)
	}
	// Singular system.
	if _, err := solveLinear([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := solveLinear(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
}

func TestLeastSquaresFitsLine(t *testing.T) {
	// y = 3 + 2x exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x = append(x, []float64{1, float64(i)})
		y = append(y, 3+2*float64(i))
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-3) > 1e-6 || math.Abs(beta[1]-2) > 1e-6 {
		t.Errorf("beta = %v, want [3 2]", beta)
	}
	if _, err := leastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := leastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged design accepted")
	}
}

func BenchmarkFitARIMA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := 1; i < len(x); i++ {
		x[i] = 0.7*x[i-1] + rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitARIMA(x, 2, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
