package predict

import (
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

func newMPC(t *testing.T) *MPCEntrant {
	t.Helper()
	cfg := DefaultMPCConfig()
	cfg.HW.SeasonLength = 60 // hourly season: the test traces are short
	e, err := NewMPCEntrant("mpc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMPCKeepsSteadyLoadWarm(t *testing.T) {
	e := newMPC(t)
	e.Register(0, 0, 3)

	// Before any observation the forecast is zero: nothing is held.
	if v := e.KeepAlive(0, 0); v != cluster.NoVariant {
		t.Fatalf("unobserved function held warm on variant %d", v)
	}

	// Steady per-minute load: once the smoother converges, the horizon
	// optimization keeps the highest variant warm.
	for m := 0; m < 120; m++ {
		e.Record(m, 0, 2)
	}
	if v := e.KeepAlive(120, 0); v != 2 {
		t.Errorf("steady load held variant %d, want highest (2)", v)
	}

	// A long-idle second slot stays dropped even while slot 0 is hot.
	e.Register(1, 0, 3)
	for m := 0; m < 120; m++ {
		e.Record(m, 1, 0)
	}
	if v := e.KeepAlive(120, 1); v != cluster.NoVariant {
		t.Errorf("idle function held warm on variant %d", v)
	}
}

func TestMPCRetireResetsForecaster(t *testing.T) {
	e := newMPC(t)
	e.Register(0, 0, 2)
	for m := 0; m < 120; m++ {
		e.Record(m, 0, 3)
	}
	if e.KeepAlive(120, 0) < 0 {
		t.Fatal("steady load not held before retirement")
	}
	e.Retire(0)
	if v := e.KeepAlive(120, 0); v != cluster.NoVariant {
		t.Errorf("retired slot still warm: %d", v)
	}
	if e.hw.seen[0] != 0 || e.hw.lastInv[0] != -1 {
		t.Error("retired forecaster slot not reset")
	}
}

func TestMPCConfigValidation(t *testing.T) {
	bad := DefaultMPCConfig()
	bad.Horizon = -1
	if _, err := NewMPCEntrant("mpc", bad); err == nil {
		t.Error("negative horizon accepted")
	}
	bad = DefaultMPCConfig()
	bad.ColdCostMinutes = 0
	if _, err := NewMPCEntrant("mpc", bad); err == nil {
		t.Error("zero cold-start cost accepted")
	}
	bad = DefaultMPCConfig()
	bad.HW.Alpha = 2
	if _, err := NewMPCEntrant("mpc", bad); err == nil {
		t.Error("out-of-range smoothing factor accepted")
	}
}
