package predict

import (
	"fmt"
	"math"

	"github.com/pulse-serverless/pulse/internal/cluster"
)

// MPCEntrant is a tournament shadow policy doing receding-horizon model
// predictive control ("Taming Cold Starts: Proactive Serverless Scheduling
// with Model Predictive Control"): each minute it rolls a Holt-Winters
// forecast of per-minute arrivals forward over the next Horizon minutes
// and keeps the family's highest variant warm exactly when some prefix of
// the horizon is cheaper warm than cold, i.e. when there exists k ≤ Horizon
// with
//
//	k < ColdCostMinutes · Σ_{j=0}^{k−1} (1 − e^(−λ̂(m+j)))
//
// where λ̂ is the forecast arrival rate and 1 − e^(−λ̂) the probability of
// ≥1 arrival in the minute. Pricing the cold start in keep-alive minutes
// of the same variant cancels the dollar rate, so only the forecaster and
// two scalars parameterize the controller. Only the first decision of
// each optimized horizon is executed; the plan is re-derived at the next
// minute as new observations arrive — the receding-horizon discipline.
//
// It implements the tournament.ShadowEntrant protocol: forecasts advance
// only in Record, at the minute barrier, so decisions are a pure function
// of the trace.
type MPCEntrant struct {
	name string
	cfg  MPCConfig
	hw   *HoltWinters

	highest []int
}

// MPCConfig parameterizes the controller.
type MPCConfig struct {
	// HW parameterizes the Holt-Winters forecaster (zero value:
	// DefaultHWConfig).
	HW HWConfig
	// Horizon is the receding optimization horizon in minutes (default 10).
	Horizon int
	// ColdCostMinutes expresses one cold start as this many minutes of
	// keep-alive for the family's highest variant (default 15).
	ColdCostMinutes float64
}

// DefaultMPCConfig returns working defaults.
func DefaultMPCConfig() MPCConfig {
	return MPCConfig{HW: DefaultHWConfig(), Horizon: 10, ColdCostMinutes: 15}
}

// NewMPCEntrant builds the entrant. The zero-value config selects
// DefaultMPCConfig. Function slots are added via Register, so the
// forecaster starts empty and grows with the population.
func NewMPCEntrant(name string, cfg MPCConfig) (*MPCEntrant, error) {
	if cfg.Horizon == 0 && cfg.ColdCostMinutes == 0 && cfg.HW == (HWConfig{}) {
		cfg = DefaultMPCConfig()
	}
	if cfg.HW == (HWConfig{}) {
		cfg.HW = DefaultHWConfig()
	}
	if err := cfg.HW.validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("predict: non-positive MPC horizon %d", cfg.Horizon)
	}
	if cfg.ColdCostMinutes <= 0 {
		return nil, fmt.Errorf("predict: non-positive MPC cold-start cost %v", cfg.ColdCostMinutes)
	}
	return &MPCEntrant{
		name: name,
		cfg:  cfg,
		hw:   &HoltWinters{cfg: cfg.HW},
	}, nil
}

// Name implements tournament.ShadowEntrant.
func (e *MPCEntrant) Name() string { return e.name }

// Register implements tournament.ShadowEntrant: grow one forecaster slot.
func (e *MPCEntrant) Register(fn, fam, numVariants int) {
	e.highest = append(e.highest, numVariants-1)
	e.hw.level = append(e.hw.level, 0)
	e.hw.trend = append(e.hw.trend, 0)
	e.hw.season = append(e.hw.season, make([]float64, e.cfg.HW.SeasonLength))
	e.hw.seen = append(e.hw.seen, 0)
	e.hw.lastInv = append(e.hw.lastInv, -1)
}

// Retire implements tournament.ShadowEntrant: the slot's forecaster state
// resets to never-observed.
func (e *MPCEntrant) Retire(fn int) {
	e.hw.level[fn] = 0
	e.hw.trend[fn] = 0
	e.hw.seen[fn] = 0
	e.hw.lastInv[fn] = -1
	season := e.hw.season[fn]
	for i := range season {
		season[i] = 0
	}
}

// KeepAlive implements tournament.ShadowEntrant: solve the horizon and
// execute its first decision.
func (e *MPCEntrant) KeepAlive(m, fn int) int {
	cum := 0.0
	for j := 0; j < e.cfg.Horizon; j++ {
		lam := e.hw.Forecast(m+j, fn)
		cum += 1 - math.Exp(-lam)
		if float64(j+1) < e.cfg.ColdCostMinutes*cum {
			return e.highest[fn]
		}
	}
	return cluster.NoVariant
}

// Record implements tournament.ShadowEntrant: one forecaster observation
// per function per minute, at the barrier.
func (e *MPCEntrant) Record(m, fn, count int) {
	e.hw.Record(m, fn, count)
}
