package models

import (
	"encoding/json"
	"fmt"
	"io"
)

// The model repository (Figure 3) as a file artifact: catalogs serialize to
// JSON so deployments can describe their own model families and variants
// without recompiling.
//
//	{
//	  "families": [
//	    {"name": "GPT", "task": "text generation", "dataset": "wikitext",
//	     "variants": [
//	       {"name": "GPT-Small", "accuracyPct": 87.65, "execSec": 12.9,
//	        "coldStartSec": 13.8, "memoryMB": 982}
//	     ]}
//	  ]
//	}

type catalogJSON struct {
	Families []familyJSON `json:"families"`
}

type familyJSON struct {
	Name     string        `json:"name"`
	Task     string        `json:"task,omitempty"`
	Dataset  string        `json:"dataset,omitempty"`
	Variants []variantJSON `json:"variants"`
}

type variantJSON struct {
	Name         string  `json:"name"`
	AccuracyPct  float64 `json:"accuracyPct"`
	ExecSec      float64 `json:"execSec"`
	ColdStartSec float64 `json:"coldStartSec"`
	MemoryMB     float64 `json:"memoryMB"`
}

// WriteCatalog serializes a validated catalog as indented JSON.
func WriteCatalog(w io.Writer, c *Catalog) error {
	if err := c.Validate(); err != nil {
		return err
	}
	out := catalogJSON{Families: make([]familyJSON, len(c.Families))}
	for i, f := range c.Families {
		fj := familyJSON{Name: f.Name, Task: f.Task, Dataset: f.Dataset,
			Variants: make([]variantJSON, len(f.Variants))}
		for j, v := range f.Variants {
			fj.Variants[j] = variantJSON{
				Name:         v.Name,
				AccuracyPct:  v.AccuracyPct,
				ExecSec:      v.ExecSec,
				ColdStartSec: v.ColdStartSec,
				MemoryMB:     v.MemoryMB,
			}
		}
		out.Families[i] = fj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("models: encode catalog: %w", err)
	}
	return nil
}

// ReadCatalog parses and validates a catalog written by WriteCatalog (or
// authored by hand). Unknown fields are rejected to catch typos.
func ReadCatalog(r io.Reader) (*Catalog, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in catalogJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("models: decode catalog: %w", err)
	}
	c := &Catalog{Families: make([]Family, len(in.Families))}
	for i, fj := range in.Families {
		f := Family{Name: fj.Name, Task: fj.Task, Dataset: fj.Dataset,
			Variants: make([]Variant, len(fj.Variants))}
		for j, vj := range fj.Variants {
			f.Variants[j] = Variant{
				Name:         vj.Name,
				AccuracyPct:  vj.AccuracyPct,
				ExecSec:      vj.ExecSec,
				ColdStartSec: vj.ColdStartSec,
				MemoryMB:     vj.MemoryMB,
			}
		}
		c.Families[i] = f
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
