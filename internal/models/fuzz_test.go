package models

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCatalog: arbitrary JSON must never panic; anything accepted must
// validate and round-trip to an equivalent catalog.
func FuzzReadCatalog(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCatalog(&seed, PaperCatalog()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"families": []}`)
	f.Add(`{"families": [{"name": "X", "variants": [{"name": "v", "accuracyPct": 50, "execSec": 1, "memoryMB": 10}]}]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCatalog(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ReadCatalog accepted invalid catalog: %v", verr)
		}
		var out bytes.Buffer
		if werr := WriteCatalog(&out, c); werr != nil {
			t.Fatalf("accepted catalog failed to serialize: %v", werr)
		}
		back, rerr := ReadCatalog(&out)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(back.Families) != len(c.Families) {
			t.Fatalf("round trip changed family count")
		}
	})
}
