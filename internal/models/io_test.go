package models

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogJSONRoundTrip(t *testing.T) {
	orig := PaperCatalog()
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Families) != len(orig.Families) {
		t.Fatalf("families: %d vs %d", len(back.Families), len(orig.Families))
	}
	for i := range orig.Families {
		of, bf := orig.Families[i], back.Families[i]
		if of.Name != bf.Name || of.Task != bf.Task || of.Dataset != bf.Dataset {
			t.Errorf("family %d metadata: %+v vs %+v", i, of, bf)
		}
		if len(of.Variants) != len(bf.Variants) {
			t.Fatalf("family %d variants: %d vs %d", i, len(of.Variants), len(bf.Variants))
		}
		for j := range of.Variants {
			if of.Variants[j] != bf.Variants[j] {
				t.Errorf("variant %d/%d: %+v vs %+v", i, j, of.Variants[j], bf.Variants[j])
			}
		}
	}
}

func TestWriteCatalogRejectsInvalid(t *testing.T) {
	if err := WriteCatalog(&bytes.Buffer{}, &Catalog{}); err == nil {
		t.Error("invalid catalog written")
	}
}

func TestReadCatalogErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", "{"},
		{"unknown field", `{"families": [], "extra": 1}`},
		{"unknown variant field", `{"families": [{"name": "F", "variants": [{"name": "v", "accuracyPct": 50, "execSec": 1, "memoryMB": 10, "zzz": 1}]}]}`},
		{"empty catalog", `{"families": []}`},
		{"invalid ordering", `{"families": [{"name": "F", "variants": [
			{"name": "a", "accuracyPct": 90, "execSec": 1, "memoryMB": 10},
			{"name": "b", "accuracyPct": 80, "execSec": 1, "memoryMB": 20}]}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCatalog(strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadCatalog(%s) accepted", c.name)
			}
		})
	}
}

func TestReadCatalogHandwritten(t *testing.T) {
	in := `{"families": [
		{"name": "Tiny", "task": "demo", "variants": [
			{"name": "t-lo", "accuracyPct": 60, "execSec": 0.5, "coldStartSec": 2, "memoryMB": 100},
			{"name": "t-hi", "accuracyPct": 80, "execSec": 1.0, "coldStartSec": 4, "memoryMB": 400}
		]}
	]}`
	c, err := ReadCatalog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := c.FamilyByName("Tiny")
	if f == nil || f.NumVariants() != 2 || f.Highest().MemoryMB != 400 {
		t.Errorf("parsed catalog wrong: %+v", c)
	}
}
