package models

import (
	"fmt"
	"math"
	"math/rand"
)

// LambdaSim simulates a single AWS-Lambda-style function hosting one model
// variant, reproducing the behaviours the paper's characterization protocol
// exploits: the first invocation after container creation is cold, changing
// the configured memory size tears the container down (forcing a cold start
// on the next invocation), and subsequent invocations are warm.
//
// Observed latencies carry multiplicative log-normal noise, the shape
// measured latencies exhibit on real FaaS platforms.
type LambdaSim struct {
	variant    Variant
	memorySize float64 // configured Lambda memory, MB
	warm       bool
	rng        *rand.Rand
	noiseSigma float64
}

// NewLambdaSim creates a simulator for the given variant. Per the paper's
// methodology the configured Lambda memory is "twice the size of the ECR
// image", which we approximate as twice the variant's memory footprint.
// noiseSigma sets the log-normal noise scale (0 disables noise).
func NewLambdaSim(v Variant, seed int64, noiseSigma float64) (*LambdaSim, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if noiseSigma < 0 {
		return nil, fmt.Errorf("models: negative noise sigma %v", noiseSigma)
	}
	return &LambdaSim{
		variant:    v,
		memorySize: 2 * v.MemoryMB,
		rng:        rand.New(rand.NewSource(seed)),
		noiseSigma: noiseSigma,
	}, nil
}

// Invoke runs one invocation and returns the observed service time in
// seconds and whether it was a cold start.
func (l *LambdaSim) Invoke() (serviceSec float64, cold bool) {
	cold = !l.warm
	l.warm = true
	base := l.variant.ExecSec
	if cold {
		base = l.variant.ColdServiceSec()
	}
	return base * l.noise(), cold
}

// SetMemorySize changes the configured memory. Any change destroys the
// running container, so the next invocation is cold — the trick the paper
// uses to measure cold-start service times on demand.
func (l *LambdaSim) SetMemorySize(mb float64) error {
	if mb <= 0 {
		return fmt.Errorf("models: non-positive memory size %v", mb)
	}
	if mb != l.memorySize {
		l.memorySize = mb
		l.warm = false
	}
	return nil
}

// MemorySize returns the configured memory size in MB.
func (l *LambdaSim) MemorySize() float64 { return l.memorySize }

// Warm reports whether a container is currently alive.
func (l *LambdaSim) Warm() bool { return l.warm }

// Expire tears the container down, as the platform does after the
// keep-alive period lapses.
func (l *LambdaSim) Expire() { l.warm = false }

func (l *LambdaSim) noise() float64 {
	if l.noiseSigma == 0 {
		return 1
	}
	return math.Exp(l.rng.NormFloat64() * l.noiseSigma)
}

// Characterization holds the measured profile of one variant — a Table I
// row as this repository regenerates it.
type Characterization struct {
	Variant               string
	MeanWarmSec           float64
	MeanColdSec           float64
	AccuracyPct           float64
	MemoryMB              float64
	KeepAliveCentsPerHour float64 // at the given cost rate
	WarmSamples           int
	ColdSamples           int
}

// Characterize reproduces the paper's measurement protocol against the
// simulator:
//
//   - warm path: "a dummy run followed by 1000 consecutive runs" whose
//     latencies are averaged;
//   - cold path: repeatedly toggle the memory size ("adjusted the memory
//     size of the function to an arbitrary value, conducted a dummy
//     invocation, and subsequently reverted the memory size"), measuring
//     the cold invocation that follows each toggle.
//
// centsPerMBHour converts the variant's footprint into the keep-alive cost
// column.
func Characterize(v Variant, seed int64, noiseSigma float64, warmRuns, coldRuns int, centsPerMBHour float64) (Characterization, error) {
	if warmRuns <= 0 || coldRuns <= 0 {
		return Characterization{}, fmt.Errorf("models: need positive run counts, got warm=%d cold=%d", warmRuns, coldRuns)
	}
	sim, err := NewLambdaSim(v, seed, noiseSigma)
	if err != nil {
		return Characterization{}, err
	}
	ch := Characterization{
		Variant:               v.Name,
		AccuracyPct:           v.AccuracyPct,
		MemoryMB:              v.MemoryMB,
		KeepAliveCentsPerHour: v.MemoryMB * centsPerMBHour,
	}
	// Dummy run to warm the container, then the consecutive warm runs.
	if _, cold := sim.Invoke(); !cold {
		return Characterization{}, fmt.Errorf("models: fresh simulator should cold start")
	}
	var warmSum float64
	for i := 0; i < warmRuns; i++ {
		s, cold := sim.Invoke()
		if cold {
			return Characterization{}, fmt.Errorf("models: unexpected cold start during warm characterization")
		}
		warmSum += s
	}
	ch.MeanWarmSec = warmSum / float64(warmRuns)
	ch.WarmSamples = warmRuns

	orig := sim.MemorySize()
	var coldSum float64
	for i := 0; i < coldRuns; i++ {
		// Toggle memory to kill the container, dummy-invoke, revert, then
		// measure the cold invocation.
		if err := sim.SetMemorySize(orig + 64); err != nil {
			return Characterization{}, err
		}
		if _, cold := sim.Invoke(); !cold {
			return Characterization{}, fmt.Errorf("models: memory change did not force cold start")
		}
		if err := sim.SetMemorySize(orig); err != nil {
			return Characterization{}, err
		}
		s, cold := sim.Invoke()
		if !cold {
			return Characterization{}, fmt.Errorf("models: reverting memory did not force cold start")
		}
		coldSum += s
	}
	ch.MeanColdSec = coldSum / float64(coldRuns)
	ch.ColdSamples = coldRuns
	return ch, nil
}

// CharacterizeCatalog characterizes every variant in the catalog,
// regenerating Table I. Results are returned family by family in catalog
// order.
func CharacterizeCatalog(c *Catalog, seed int64, noiseSigma float64, warmRuns, coldRuns int, centsPerMBHour float64) ([]Characterization, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []Characterization
	for fi := range c.Families {
		for vi, v := range c.Families[fi].Variants {
			ch, err := Characterize(v, seed+int64(fi*100+vi), noiseSigma, warmRuns, coldRuns, centsPerMBHour)
			if err != nil {
				return nil, err
			}
			out = append(out, ch)
		}
	}
	return out, nil
}

// DefaultCentsPerMBHour is the keep-alive cost rate implied by Table I
// (anchored at GPT-Large: 41.71 ¢/h for 3500 MB).
const DefaultCentsPerMBHour = 41.71 / 3500
