package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func validVariant() Variant {
	return Variant{Name: "v", AccuracyPct: 80, ExecSec: 1, ColdStartSec: 5, MemoryMB: 500}
}

func TestVariantValidate(t *testing.T) {
	if err := validVariant().Validate(); err != nil {
		t.Errorf("valid variant rejected: %v", err)
	}
	mut := []func(*Variant){
		func(v *Variant) { v.Name = "" },
		func(v *Variant) { v.AccuracyPct = 0 },
		func(v *Variant) { v.AccuracyPct = 101 },
		func(v *Variant) { v.ExecSec = 0 },
		func(v *Variant) { v.ColdStartSec = -1 },
		func(v *Variant) { v.MemoryMB = 0 },
	}
	for i, m := range mut {
		v := validVariant()
		m(&v)
		if err := v.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVariantDerived(t *testing.T) {
	v := validVariant()
	if got := v.ColdServiceSec(); got != 6 {
		t.Errorf("ColdServiceSec = %v, want 6", got)
	}
	if got := v.Accuracy(); got != 0.8 {
		t.Errorf("Accuracy = %v, want 0.8", got)
	}
}

func twoVariantFamily() Family {
	return Family{Name: "F", Variants: []Variant{
		{Name: "lo", AccuracyPct: 70, ExecSec: 1, ColdStartSec: 3, MemoryMB: 300},
		{Name: "hi", AccuracyPct: 90, ExecSec: 2, ColdStartSec: 8, MemoryMB: 900},
	}}
}

func TestFamilyAccessors(t *testing.T) {
	f := twoVariantFamily()
	if f.NumVariants() != 2 {
		t.Errorf("NumVariants = %d", f.NumVariants())
	}
	if f.Lowest().Name != "lo" || f.Highest().Name != "hi" {
		t.Errorf("Lowest/Highest wrong: %v / %v", f.Lowest().Name, f.Highest().Name)
	}
}

func TestAccuracyImprovement(t *testing.T) {
	f := twoVariantFamily()
	// Lowest variant: its own accuracy in decimal form.
	ai, err := f.AccuracyImprovement(0)
	if err != nil || math.Abs(ai-0.70) > 1e-12 {
		t.Errorf("Ai(0) = %v, %v; want 0.70", ai, err)
	}
	// Higher variant: gain over the next lower one.
	ai, err = f.AccuracyImprovement(1)
	if err != nil || math.Abs(ai-0.20) > 1e-12 {
		t.Errorf("Ai(1) = %v, %v; want 0.20", ai, err)
	}
	if _, err := f.AccuracyImprovement(-1); err == nil {
		t.Error("Ai(-1) should fail")
	}
	if _, err := f.AccuracyImprovement(2); err == nil {
		t.Error("Ai(out of range) should fail")
	}
}

func TestFamilyValidate(t *testing.T) {
	if err := twoVariantFamily().Validate(); err != nil {
		t.Errorf("valid family rejected: %v", err)
	}
	bad := []Family{
		{Name: "", Variants: twoVariantFamily().Variants},
		{Name: "F"},
		{Name: "F", Variants: []Variant{
			{Name: "a", AccuracyPct: 90, ExecSec: 1, MemoryMB: 100},
			{Name: "b", AccuracyPct: 80, ExecSec: 1, MemoryMB: 200}, // accuracy decreasing
		}},
		{Name: "F", Variants: []Variant{
			{Name: "a", AccuracyPct: 80, ExecSec: 1, MemoryMB: 500},
			{Name: "b", AccuracyPct: 90, ExecSec: 1, MemoryMB: 200}, // memory decreasing
		}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad family %d accepted", i)
		}
	}
}

func TestPaperCatalogValid(t *testing.T) {
	c := PaperCatalog()
	if err := c.Validate(); err != nil {
		t.Fatalf("paper catalog invalid: %v", err)
	}
	if len(c.Families) != 5 {
		t.Errorf("families = %d, want 5 (Table IV)", len(c.Families))
	}
	// Spot-check Table I numbers.
	gpt := c.FamilyByName("GPT")
	if gpt == nil {
		t.Fatal("no GPT family")
	}
	if gpt.NumVariants() != 3 {
		t.Errorf("GPT variants = %d, want 3", gpt.NumVariants())
	}
	if gpt.Lowest().AccuracyPct != 87.65 || gpt.Highest().AccuracyPct != 93.45 {
		t.Errorf("GPT accuracies: %v .. %v", gpt.Lowest().AccuracyPct, gpt.Highest().AccuracyPct)
	}
	if gpt.Lowest().ExecSec != 12.90 {
		t.Errorf("GPT-Small exec = %v, want 12.90", gpt.Lowest().ExecSec)
	}
	// GPT-Large anchors the memory calibration at 3500 MB.
	if math.Abs(gpt.Highest().MemoryMB-3500) > 1 {
		t.Errorf("GPT-Large memory = %v, want ≈3500", gpt.Highest().MemoryMB)
	}
	// Paper: models range between 300 and 3500 MB.
	for _, f := range c.Families {
		for _, v := range f.Variants {
			if v.MemoryMB < 250 || v.MemoryMB > 3600 {
				t.Errorf("%s memory %v MB outside plausible range", v.Name, v.MemoryMB)
			}
		}
	}
	yolo := c.FamilyByName("YOLO")
	if yolo.Lowest().AccuracyPct != 56.80 {
		t.Errorf("YOLO lowest accuracy = %v, want 56.80 (quoted in paper §III-B)", yolo.Lowest().AccuracyPct)
	}
	if c.FamilyByName("nope") != nil {
		t.Error("FamilyByName of absent family should be nil")
	}
}

func TestCatalogValidateErrors(t *testing.T) {
	if err := (&Catalog{}).Validate(); err == nil {
		t.Error("empty catalog accepted")
	}
	dup := &Catalog{Families: []Family{twoVariantFamily(), twoVariantFamily()}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate family names accepted")
	}
}

func TestTwoVariantCatalog(t *testing.T) {
	c := TwoVariantCatalog(PaperCatalog())
	if err := c.Validate(); err != nil {
		t.Fatalf("two-variant catalog invalid: %v", err)
	}
	for _, f := range c.Families {
		if f.NumVariants() > 2 {
			t.Errorf("family %s has %d variants after collapse", f.Name, f.NumVariants())
		}
	}
	// BERT already has two variants and must be preserved.
	if c.FamilyByName("BERT").NumVariants() != 2 {
		t.Error("BERT lost a variant")
	}
	// Collapse must not alias the source catalog.
	src := PaperCatalog()
	col := TwoVariantCatalog(src)
	col.Families[0].Variants[0].AccuracyPct = 1
	if src.Families[0].Variants[0].AccuracyPct == 1 {
		t.Error("TwoVariantCatalog aliases source variants")
	}
}

func TestAssignment(t *testing.T) {
	c := PaperCatalog()
	rng := rand.New(rand.NewSource(3))
	a := RandomAssignment(rng, c, 12)
	if err := a.Validate(c, 12); err != nil {
		t.Errorf("random assignment invalid: %v", err)
	}
	if err := a.Validate(c, 11); err == nil {
		t.Error("wrong function count accepted")
	}
	bad := Assignment{0, 99}
	if err := bad.Validate(c, 2); err == nil {
		t.Error("out-of-range family accepted")
	}
}

// Property: random assignments over many draws cover every family.
func TestRandomAssignmentCoverage(t *testing.T) {
	c := PaperCatalog()
	rng := rand.New(rand.NewSource(4))
	seen := make(map[int]bool)
	for i := 0; i < 50; i++ {
		for _, fam := range RandomAssignment(rng, c, 12) {
			seen[fam] = true
		}
	}
	if len(seen) != len(c.Families) {
		t.Errorf("coverage = %d families, want %d", len(seen), len(c.Families))
	}
}

// Property: Ai is always within [0,1] for every variant of every family.
func TestAccuracyImprovementRange(t *testing.T) {
	c := PaperCatalog()
	for _, f := range c.Families {
		for i := range f.Variants {
			ai, err := f.AccuracyImprovement(i)
			if err != nil {
				t.Fatal(err)
			}
			if ai < 0 || ai > 1 {
				t.Errorf("%s variant %d: Ai = %v outside [0,1]", f.Name, i, ai)
			}
		}
	}
}

// Property (testing/quick): for any synthetic increasing-accuracy family,
// the sum of Ai over variants 1..n-1 equals highest−lowest accuracy.
func TestAccuracyImprovementTelescopes(t *testing.T) {
	f := func(deltas []uint8) bool {
		if len(deltas) == 0 || len(deltas) > 8 {
			return true
		}
		fam := Family{Name: "Q"}
		acc := 10.0
		memory := 100.0
		fam.Variants = append(fam.Variants, Variant{Name: "v0", AccuracyPct: acc, ExecSec: 1, MemoryMB: memory})
		for i, d := range deltas {
			acc += float64(d%50)/10 + 0.1
			memory += 10
			if acc > 100 {
				return true
			}
			fam.Variants = append(fam.Variants, Variant{
				Name: "v" + string(rune('1'+i)), AccuracyPct: acc, ExecSec: 1, MemoryMB: memory,
			})
		}
		if err := fam.Validate(); err != nil {
			return false
		}
		var sum float64
		for i := 1; i < fam.NumVariants(); i++ {
			ai, err := fam.AccuracyImprovement(i)
			if err != nil {
				return false
			}
			sum += ai
		}
		want := (fam.Highest().AccuracyPct - fam.Lowest().AccuracyPct) / 100
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
