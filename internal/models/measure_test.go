package models

import (
	"math"
	"testing"
)

func TestLambdaSimColdWarmCycle(t *testing.T) {
	v := validVariant()
	sim, err := NewLambdaSim(v, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Warm() {
		t.Error("fresh simulator should be cold")
	}
	s, cold := sim.Invoke()
	if !cold {
		t.Error("first invocation should be cold")
	}
	if s != v.ColdServiceSec() {
		t.Errorf("cold service = %v, want %v", s, v.ColdServiceSec())
	}
	s, cold = sim.Invoke()
	if cold {
		t.Error("second invocation should be warm")
	}
	if s != v.ExecSec {
		t.Errorf("warm service = %v, want %v", s, v.ExecSec)
	}
	// Memory change forces the next invocation cold.
	if err := sim.SetMemorySize(sim.MemorySize() + 128); err != nil {
		t.Fatal(err)
	}
	if _, cold := sim.Invoke(); !cold {
		t.Error("memory change should force cold start")
	}
	// Setting the same size is a no-op.
	if err := sim.SetMemorySize(sim.MemorySize()); err != nil {
		t.Fatal(err)
	}
	if _, cold := sim.Invoke(); cold {
		t.Error("unchanged memory size should not force cold start")
	}
	sim.Expire()
	if _, cold := sim.Invoke(); !cold {
		t.Error("expired container should cold start")
	}
}

func TestLambdaSimDefaults(t *testing.T) {
	v := validVariant()
	sim, err := NewLambdaSim(v, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Paper methodology: Lambda memory is twice the image size.
	if got := sim.MemorySize(); got != 2*v.MemoryMB {
		t.Errorf("MemorySize = %v, want %v", got, 2*v.MemoryMB)
	}
	if err := sim.SetMemorySize(0); err == nil {
		t.Error("SetMemorySize(0) should fail")
	}
	if _, err := NewLambdaSim(Variant{}, 1, 0); err == nil {
		t.Error("invalid variant accepted")
	}
	if _, err := NewLambdaSim(v, 1, -0.1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestLambdaSimNoise(t *testing.T) {
	v := validVariant()
	sim, err := NewLambdaSim(v, 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sim.Invoke() // discard cold
	var sum float64
	const n = 2000
	distinct := make(map[float64]bool)
	for i := 0; i < n; i++ {
		s, _ := sim.Invoke()
		if s <= 0 {
			t.Fatal("non-positive noisy latency")
		}
		sum += s
		distinct[s] = true
	}
	mean := sum / n
	if math.Abs(mean-v.ExecSec) > 0.05*v.ExecSec {
		t.Errorf("noisy mean = %v, want ≈%v", mean, v.ExecSec)
	}
	if len(distinct) < n/2 {
		t.Error("noise not actually varying")
	}
}

func TestCharacterize(t *testing.T) {
	v := validVariant()
	ch, err := Characterize(v, 1, 0, 100, 10, DefaultCentsPerMBHour)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Variant != v.Name {
		t.Errorf("variant name = %q", ch.Variant)
	}
	if ch.MeanWarmSec != v.ExecSec {
		t.Errorf("noiseless warm mean = %v, want %v", ch.MeanWarmSec, v.ExecSec)
	}
	if ch.MeanColdSec != v.ColdServiceSec() {
		t.Errorf("noiseless cold mean = %v, want %v", ch.MeanColdSec, v.ColdServiceSec())
	}
	if ch.WarmSamples != 100 || ch.ColdSamples != 10 {
		t.Errorf("samples: %d/%d", ch.WarmSamples, ch.ColdSamples)
	}
	wantCost := v.MemoryMB * DefaultCentsPerMBHour
	if math.Abs(ch.KeepAliveCentsPerHour-wantCost) > 1e-9 {
		t.Errorf("cost = %v, want %v", ch.KeepAliveCentsPerHour, wantCost)
	}
	if _, err := Characterize(v, 1, 0, 0, 10, 1); err == nil {
		t.Error("zero warm runs accepted")
	}
	if _, err := Characterize(v, 1, 0, 10, 0, 1); err == nil {
		t.Error("zero cold runs accepted")
	}
}

func TestCharacterizeWithNoiseConverges(t *testing.T) {
	v := validVariant()
	ch, err := Characterize(v, 42, 0.05, 1000, 200, DefaultCentsPerMBHour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.MeanWarmSec-v.ExecSec) > 0.05*v.ExecSec {
		t.Errorf("warm mean %v too far from %v", ch.MeanWarmSec, v.ExecSec)
	}
	if math.Abs(ch.MeanColdSec-v.ColdServiceSec()) > 0.05*v.ColdServiceSec() {
		t.Errorf("cold mean %v too far from %v", ch.MeanColdSec, v.ColdServiceSec())
	}
	if ch.MeanColdSec <= ch.MeanWarmSec {
		t.Error("cold starts should be slower than warm starts")
	}
}

func TestCharacterizeCatalogTableI(t *testing.T) {
	c := PaperCatalog()
	rows, err := CharacterizeCatalog(c, 1, 0, 50, 5, DefaultCentsPerMBHour)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 0
	for _, f := range c.Families {
		wantRows += f.NumVariants()
	}
	if len(rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rows), wantRows)
	}
	// Noiseless characterization reproduces Table I warm service times for
	// the tabulated variants exactly.
	byName := make(map[string]Characterization)
	for _, r := range rows {
		byName[r.Variant] = r
	}
	for _, want := range []struct {
		name string
		warm float64
		cost float64
	}{
		{"GPT-Small", 12.90, 11.70},
		{"GPT-Medium", 22.50, 22.57},
		{"GPT-Large", 23.66, 41.71},
		{"BERT-Small", 1.09, 4.392},
		{"DenseNet-201", 1.65, 4.07},
	} {
		r, ok := byName[want.name]
		if !ok {
			t.Errorf("missing characterization for %s", want.name)
			continue
		}
		if math.Abs(r.MeanWarmSec-want.warm) > 1e-9 {
			t.Errorf("%s warm = %v, want %v (Table I)", want.name, r.MeanWarmSec, want.warm)
		}
		if math.Abs(r.KeepAliveCentsPerHour-want.cost) > 0.02 {
			t.Errorf("%s cost = %v ¢/h, want ≈%v (Table I)", want.name, r.KeepAliveCentsPerHour, want.cost)
		}
	}
	if _, err := CharacterizeCatalog(&Catalog{}, 1, 0, 1, 1, 1); err == nil {
		t.Error("invalid catalog accepted")
	}
}

func BenchmarkLambdaSimInvoke(b *testing.B) {
	sim, err := NewLambdaSim(validVariant(), 1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Invoke()
	}
}
