package models

// PaperCatalog returns the model families of the paper's Table IV with the
// per-variant characteristics of Table I.
//
// Provenance of the numbers:
//
//   - GPT, BERT, and DenseNet accuracy, warm service time, and keep-alive
//     cost come directly from Table I. Memory is back-derived from the
//     tabulated keep-alive cost using the single cents-per-MB-hour rate
//     implied by the table (≈0.0119 ¢/MB·h, anchored at GPT-Large = 3.5 GB,
//     the top of the paper's stated 300–3500 MB model range).
//   - YOLO variants (s, l, x) are not tabulated; accuracy uses the
//     published YOLOv5 COCO mAP@0.5 figures — the paper itself quotes
//     "YOLO's lowest accuracy variant has an accuracy of 56.8%", which
//     matches YOLOv5s — with calibrated times and memory.
//   - ResNet variants (50/101/152) are not tabulated; accuracy uses the
//     published top-1 figures with calibrated times and memory in line
//     with the DenseNet family.
//   - Cold-start overhead is not tabulated anywhere in the paper; it is
//     modeled as 2 s of container creation plus model-load time
//     proportional to memory (≈12 ms/MB), matching the magnitude the
//     serverless cold-start literature reports for 0.3–3.5 GB images.
func PaperCatalog() *Catalog {
	coldStart := func(memMB float64) float64 { return 2.0 + 0.012*memMB }
	mem := func(centsPerHour float64) float64 {
		// Anchor: GPT-Large at 41.71 ¢/h occupies 3500 MB.
		return centsPerHour * 3500 / 41.71
	}
	c := &Catalog{Families: []Family{
		{
			Name: "GPT", Task: "text generation", Dataset: "wikitext",
			Variants: []Variant{
				{Name: "GPT-Small", AccuracyPct: 87.65, ExecSec: 12.90, MemoryMB: mem(11.70), ColdStartSec: coldStart(mem(11.70))},
				{Name: "GPT-Medium", AccuracyPct: 92.35, ExecSec: 22.50, MemoryMB: mem(22.57), ColdStartSec: coldStart(mem(22.57))},
				{Name: "GPT-Large", AccuracyPct: 93.45, ExecSec: 23.66, MemoryMB: mem(41.71), ColdStartSec: coldStart(mem(41.71))},
			},
		},
		{
			Name: "BERT", Task: "sentiment analysis", Dataset: "sst2",
			Variants: []Variant{
				{Name: "BERT-Small", AccuracyPct: 79.60, ExecSec: 1.09, MemoryMB: mem(4.392), ColdStartSec: coldStart(mem(4.392))},
				{Name: "BERT-Large", AccuracyPct: 82.10, ExecSec: 2.21, MemoryMB: mem(6.12), ColdStartSec: coldStart(mem(6.12))},
			},
		},
		{
			Name: "YOLO", Task: "object detection", Dataset: "COCO",
			Variants: []Variant{
				{Name: "YOLO-s", AccuracyPct: 56.80, ExecSec: 0.82, MemoryMB: 340, ColdStartSec: coldStart(340)},
				{Name: "YOLO-l", AccuracyPct: 67.30, ExecSec: 2.05, MemoryMB: 920, ColdStartSec: coldStart(920)},
				{Name: "YOLO-x", AccuracyPct: 68.90, ExecSec: 3.20, MemoryMB: 1420, ColdStartSec: coldStart(1420)},
			},
		},
		{
			Name: "ResNet", Task: "image classification", Dataset: "CIFAR-10",
			Variants: []Variant{
				{Name: "ResNet-50", AccuracyPct: 76.13, ExecSec: 0.94, MemoryMB: 330, ColdStartSec: coldStart(330)},
				{Name: "ResNet-101", AccuracyPct: 77.37, ExecSec: 1.31, MemoryMB: 430, ColdStartSec: coldStart(430)},
				{Name: "ResNet-152", AccuracyPct: 78.31, ExecSec: 1.72, MemoryMB: 520, ColdStartSec: coldStart(520)},
			},
		},
		{
			Name: "DenseNet", Task: "image classification", Dataset: "CIFAR-10",
			Variants: []Variant{
				{Name: "DenseNet-121", AccuracyPct: 74.98, ExecSec: 1.09, MemoryMB: mem(3.46), ColdStartSec: coldStart(mem(3.46))},
				{Name: "DenseNet-169", AccuracyPct: 76.20, ExecSec: 1.38, MemoryMB: mem(3.53), ColdStartSec: coldStart(mem(3.53))},
				{Name: "DenseNet-201", AccuracyPct: 77.42, ExecSec: 1.65, MemoryMB: mem(4.07), ColdStartSec: coldStart(mem(4.07))},
			},
		},
	}}
	return c
}

// TwoVariantCatalog collapses each family of c to its lowest and highest
// variants — the "low quality" / "high quality" pairing the motivation
// study (Tables II/III, Figure 5) evaluates.
func TwoVariantCatalog(c *Catalog) *Catalog {
	out := &Catalog{Families: make([]Family, len(c.Families))}
	for i := range c.Families {
		f := c.Families[i]
		variants := f.Variants
		if len(variants) > 2 {
			variants = []Variant{f.Lowest(), f.Highest()}
		}
		vcopy := make([]Variant, len(variants))
		copy(vcopy, variants)
		out.Families[i] = Family{Name: f.Name, Task: f.Task, Dataset: f.Dataset, Variants: vcopy}
	}
	return out
}
