// Package models provides the ML model substrate PULSE schedules: model
// families, their quality variants, and the per-variant characteristics
// (execution time, cold-start time, keep-alive memory, keep-alive cost
// rate, accuracy) the keep-alive policies consume.
//
// The paper measures these characteristics on AWS Lambda with ONNX builds
// of BERT, YOLO, GPT-2, ResNet, and DenseNet (Tables I and IV). PULSE never
// runs inference — its decisions only see these tuples — so this package
// carries the paper's published Table I numbers directly and calibrated
// synthetic values for the variants the paper uses but does not tabulate
// (YOLO, ResNet). See DESIGN.md §2 for the substitution argument.
package models

import (
	"fmt"
	"math/rand"
)

// Variant is one quality level of a model family. Variants are ordered by
// quality within a family: index 0 is the lowest-accuracy (cheapest)
// variant, the last index is the highest.
type Variant struct {
	Name         string
	AccuracyPct  float64 // accuracy delivered by an invocation, percent (0–100]
	ExecSec      float64 // warm service time: execution only ("with warmup" in Table I)
	ColdStartSec float64 // container creation + model load time added on a cold start
	MemoryMB     float64 // keep-alive memory of the warm container
}

// ColdServiceSec returns the total service time of a cold invocation:
// cold-start overhead plus execution.
func (v Variant) ColdServiceSec() float64 { return v.ColdStartSec + v.ExecSec }

// Accuracy returns the accuracy in decimal form (0–1], the form Algorithm 2
// uses for the accuracy-improvement term of the lowest variant.
func (v Variant) Accuracy() float64 { return v.AccuracyPct / 100 }

// Validate checks the variant's fields are physically meaningful.
func (v Variant) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("models: variant with empty name")
	}
	if v.AccuracyPct <= 0 || v.AccuracyPct > 100 {
		return fmt.Errorf("models: variant %q accuracy %v%% outside (0,100]", v.Name, v.AccuracyPct)
	}
	if v.ExecSec <= 0 {
		return fmt.Errorf("models: variant %q non-positive exec time %v", v.Name, v.ExecSec)
	}
	if v.ColdStartSec < 0 {
		return fmt.Errorf("models: variant %q negative cold start %v", v.Name, v.ColdStartSec)
	}
	if v.MemoryMB <= 0 {
		return fmt.Errorf("models: variant %q non-positive memory %v", v.Name, v.MemoryMB)
	}
	return nil
}

// Family is a model family with its ordered quality variants.
type Family struct {
	Name     string
	Task     string // e.g. "sentiment analysis"
	Dataset  string // evaluation dataset from Table IV
	Variants []Variant
}

// NumVariants returns the number of quality variants.
func (f Family) NumVariants() int { return len(f.Variants) }

// Lowest returns the lowest-quality variant. It panics on an empty family,
// which Validate rejects.
func (f Family) Lowest() Variant { return f.Variants[0] }

// Highest returns the highest-quality variant.
func (f Family) Highest() Variant { return f.Variants[len(f.Variants)-1] }

// AccuracyImprovement returns Algorithm 2's Ai term for the variant at
// index i: the accuracy gain (decimal) of variant i over variant i−1, or,
// for the lowest variant, its own accuracy in decimal form ("the accuracy
// improvement is equivalent to the accuracy of this lowest quality variant
// in decimal form"). The result is in [0, 1].
func (f Family) AccuracyImprovement(i int) (float64, error) {
	if i < 0 || i >= len(f.Variants) {
		return 0, fmt.Errorf("models: family %q has no variant %d", f.Name, i)
	}
	if i == 0 {
		return f.Variants[0].Accuracy(), nil
	}
	return (f.Variants[i].AccuracyPct - f.Variants[i-1].AccuracyPct) / 100, nil
}

// Validate checks the family invariants: at least one variant, each valid,
// accuracy strictly increasing and memory non-decreasing with quality. The
// memory ordering is what makes a downgrade release keep-alive memory,
// which Algorithm 2's peak-flattening loop relies on.
func (f Family) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("models: family with empty name")
	}
	if len(f.Variants) == 0 {
		return fmt.Errorf("models: family %q has no variants", f.Name)
	}
	for i, v := range f.Variants {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("models: family %q: %w", f.Name, err)
		}
		if i > 0 {
			prev := f.Variants[i-1]
			if v.AccuracyPct <= prev.AccuracyPct {
				return fmt.Errorf("models: family %q: variant %q accuracy %v not above %q's %v",
					f.Name, v.Name, v.AccuracyPct, prev.Name, prev.AccuracyPct)
			}
			if v.MemoryMB < prev.MemoryMB {
				return fmt.Errorf("models: family %q: variant %q memory %v below %q's %v",
					f.Name, v.Name, v.MemoryMB, prev.Name, prev.MemoryMB)
			}
		}
	}
	return nil
}

// Catalog is the set of model families available to the platform — the
// paper's "model repository".
type Catalog struct {
	Families []Family
}

// Validate checks every family and name uniqueness.
func (c *Catalog) Validate() error {
	if len(c.Families) == 0 {
		return fmt.Errorf("models: empty catalog")
	}
	seen := make(map[string]bool, len(c.Families))
	for i := range c.Families {
		f := &c.Families[i]
		if err := f.Validate(); err != nil {
			return err
		}
		if seen[f.Name] {
			return fmt.Errorf("models: duplicate family %q", f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// FamilyByName returns the named family, or nil.
func (c *Catalog) FamilyByName(name string) *Family {
	for i := range c.Families {
		if c.Families[i].Name == name {
			return &c.Families[i]
		}
	}
	return nil
}

// Assignment maps function index → family index within a catalog: which
// model each serverless function serves. The paper's simulation performs
// 1000 runs, "each presenting a unique combination of model-to-function
// assignments".
type Assignment []int

// Validate checks the assignment against the catalog and function count.
func (a Assignment) Validate(c *Catalog, nFunctions int) error {
	if len(a) != nFunctions {
		return fmt.Errorf("models: assignment covers %d functions, want %d", len(a), nFunctions)
	}
	for fn, fam := range a {
		if fam < 0 || fam >= len(c.Families) {
			return fmt.Errorf("models: function %d assigned to invalid family %d", fn, fam)
		}
	}
	return nil
}

// RandomAssignment draws a uniform model-to-function assignment.
func RandomAssignment(rng *rand.Rand, c *Catalog, nFunctions int) Assignment {
	a := make(Assignment, nFunctions)
	for i := range a {
		a[i] = rng.Intn(len(c.Families))
	}
	return a
}
