package attribution

import (
	"math"
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func testCatalog(t *testing.T) *models.Catalog {
	t.Helper()
	cat := &models.Catalog{Families: []models.Family{
		{Name: "alpha", Task: "test", Variants: []models.Variant{
			{Name: "alpha-lo", AccuracyPct: 60, ExecSec: 0.5, ColdStartSec: 2, MemoryMB: 512},
			{Name: "alpha-hi", AccuracyPct: 90, ExecSec: 1.0, ColdStartSec: 4, MemoryMB: 2048},
		}},
		{Name: "beta", Task: "test", Variants: []models.Variant{
			{Name: "beta-lo", AccuracyPct: 70, ExecSec: 0.3, ColdStartSec: 1, MemoryMB: 256},
			{Name: "beta-mid", AccuracyPct: 80, ExecSec: 0.6, ColdStartSec: 2, MemoryMB: 1024},
			{Name: "beta-hi", AccuracyPct: 95, ExecSec: 0.9, ColdStartSec: 3, MemoryMB: 3072},
		}},
	}}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func testTrace(t *testing.T, horizon int) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 7, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func uniform(cat *models.Catalog, n int) models.Assignment {
	asg := make(models.Assignment, n)
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	return asg
}

func newAccountant(t *testing.T, cfg Config) *Accountant {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// The accountant's fixed-high shadow must reproduce the real fixed policy
// run through the engine: attach the accountant to a fixed-high run and
// its live account and its shadow account must agree exactly — same
// kept-alive minutes (integer equality forces bitwise-equal cost products)
// and same cold starts, per function and in total.
func TestShadowFixedMatchesEnginePolicy(t *testing.T) {
	cat := models.PaperCatalog()
	tr := testTrace(t, 2*trace.MinutesPerDay)
	asg := uniform(cat, len(tr.Functions))
	cost := cluster.DefaultCostModel()

	acct := newAccountant(t, Config{Catalog: cat, Assignment: asg, Cost: cost})
	p, err := policy.NewFixed(cat, asg, acct.Window(), policy.QualityHighest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Trace: tr, Catalog: cat, Assignment: asg, Cost: cost, Observer: acct,
	}, p)
	if err != nil {
		t.Fatal(err)
	}

	rep := acct.Report()
	for _, fr := range append(rep.Functions, rep.Total) {
		if fr.Actual.KeepAliveMBMinutes != fr.FixedHigh.KeepAliveMBMinutes {
			t.Errorf("fn %d: actual KaM %v != shadow fixed KaM %v",
				fr.Function, fr.Actual.KeepAliveMBMinutes, fr.FixedHigh.KeepAliveMBMinutes)
		}
		if fr.Actual.KeepAliveCostUSD != fr.FixedHigh.KeepAliveCostUSD {
			t.Errorf("fn %d: actual cost %v != shadow fixed cost %v",
				fr.Function, fr.Actual.KeepAliveCostUSD, fr.FixedHigh.KeepAliveCostUSD)
		}
		if fr.Actual.ColdStarts != fr.FixedHigh.ColdStarts {
			t.Errorf("fn %d: actual colds %d != shadow fixed colds %d",
				fr.Function, fr.Actual.ColdStarts, fr.FixedHigh.ColdStarts)
		}
		if fr.VsFixed.KeepAliveCostUSD != 0 || fr.VsFixed.ColdStartsAvoided != 0 {
			t.Errorf("fn %d: self-shadow savings not zero: %+v", fr.Function, fr.VsFixed)
		}
	}
	// The live account also matches the engine's own result (different
	// summation order, so compare within float tolerance).
	if d := relDiff(rep.Total.Actual.KeepAliveCostUSD, res.KeepAliveCostUSD); d > 1e-9 {
		t.Errorf("accountant cost %v vs engine cost %v (rel %v)",
			rep.Total.Actual.KeepAliveCostUSD, res.KeepAliveCostUSD, d)
	}
	if rep.Total.Actual.Invocations != res.Invocations ||
		rep.Total.Actual.ColdStarts != res.ColdStarts ||
		rep.Total.Actual.WarmStarts != res.WarmStarts {
		t.Errorf("accountant inv/cold/warm %d/%d/%d vs engine %d/%d/%d",
			rep.Total.Actual.Invocations, rep.Total.Actual.ColdStarts, rep.Total.Actual.WarmStarts,
			res.Invocations, res.ColdStarts, res.WarmStarts)
	}
	if d := relDiff(rep.Total.Actual.MeanAccuracyPct, res.MeanAccuracyPct()); d > 1e-9 {
		t.Errorf("accountant accuracy %v vs engine %v", rep.Total.Actual.MeanAccuracyPct, res.MeanAccuracyPct())
	}
}

// The oracle shadow must agree with the engine's own hindsight reference,
// cluster.IdealCostSeries: highest variant alive exactly during invoked
// minutes, zero cold starts.
func TestShadowOracleMatchesIdealCostSeries(t *testing.T) {
	cat := models.PaperCatalog()
	tr := testTrace(t, trace.MinutesPerDay)
	asg := uniform(cat, len(tr.Functions))
	cost := cluster.DefaultCostModel()

	acct := newAccountant(t, Config{Catalog: cat, Assignment: asg, Cost: cost})
	p, err := core.New(core.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(cluster.Config{
		Trace: tr, Catalog: cat, Assignment: asg, Cost: cost, Observer: acct,
	}, p); err != nil {
		t.Fatal(err)
	}

	ideal, err := cluster.IdealCostSeries(tr, cat, asg, cost)
	if err != nil {
		t.Fatal(err)
	}
	var idealTotal float64
	for _, v := range ideal {
		idealTotal += v
	}
	rep := acct.Report()
	if d := relDiff(rep.Total.Oracle.KeepAliveCostUSD, idealTotal); d > 1e-9 {
		t.Errorf("oracle shadow cost %v vs IdealCostSeries %v (rel %v)",
			rep.Total.Oracle.KeepAliveCostUSD, idealTotal, d)
	}
	if rep.Total.Oracle.ColdStarts != 0 {
		t.Errorf("oracle shadow has %d cold starts, want 0", rep.Total.Oracle.ColdStarts)
	}
	if rep.Total.Oracle.WarmStarts != rep.Total.Actual.Invocations {
		t.Errorf("oracle warm starts %d != invocations %d",
			rep.Total.Oracle.WarmStarts, rep.Total.Actual.Invocations)
	}

	// The never shadow holds nothing and pays one cold start per invoked
	// function-minute.
	invokedMinutes := 0
	for fn := range tr.Functions {
		for _, c := range tr.Functions[fn].Counts {
			if c > 0 {
				invokedMinutes++
			}
		}
	}
	if rep.Total.Never.ColdStarts != invokedMinutes {
		t.Errorf("never shadow colds %d, want %d invoked fn-minutes", rep.Total.Never.ColdStarts, invokedMinutes)
	}
	if rep.Total.Never.KeepAliveMBMinutes != 0 || rep.Total.Never.KeepAliveCostUSD != 0 {
		t.Errorf("never shadow holds keep-alive: %+v", rep.Total.Never)
	}
}

// Reports must be independent of how a minute's invocations are split
// into samples: one batched sample of Count=c and c singleton samples are
// the same logical stream (the engine batches, the live runtime does not).
func TestSampleFragmentationInvariance(t *testing.T) {
	cat := testCatalog(t)
	asg := models.Assignment{0, 1}
	batched := newAccountant(t, Config{Catalog: cat, Assignment: asg, Window: 3, SeriesWindow: 64})
	singles := newAccountant(t, Config{Catalog: cat, Assignment: asg, Window: 3, SeriesWindow: 64})

	feed := func(a *Accountant, split bool) {
		for m := 0; m < 10; m++ {
			a.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: m, Function: 0, Variant: 1, VariantName: "alpha-hi", MemMB: 2048})
			a.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: m, Function: 1, Variant: cluster.NoVariant})
			a.ObserveMinute(telemetry.MinuteSample{Minute: m})
			if m%3 == 0 {
				// fn 0 warm burst of 4; fn 1 cold single + warm pair.
				if split {
					for i := 0; i < 4; i++ {
						a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 0, Variant: "alpha-hi", Count: 1, AccuracyPct: 90})
					}
					a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 1, Variant: "beta-hi", Cold: true, Count: 1, AccuracyPct: 95})
					for i := 0; i < 2; i++ {
						a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 1, Variant: "beta-hi", Count: 1, AccuracyPct: 95})
					}
				} else {
					a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 0, Variant: "alpha-hi", Count: 4, AccuracyPct: 90})
					a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 1, Variant: "beta-hi", Cold: true, Count: 1, AccuracyPct: 95})
					a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 1, Variant: "beta-hi", Count: 2, AccuracyPct: 95})
				}
			}
		}
	}
	feed(batched, false)
	feed(singles, true)

	if rb, rs := batched.Report(), singles.Report(); !reflect.DeepEqual(rb, rs) {
		t.Errorf("fragmented feed diverged:\nbatched: %+v\nsingles: %+v", rb, rs)
	}
	for m := Metric(0); m < numMetrics; m++ {
		sb := batched.Series(m, 64, false)
		ss := singles.Series(m, 64, false)
		if !reflect.DeepEqual(sb, ss) {
			t.Errorf("series %v diverged: %v vs %v", m, sb, ss)
		}
	}
}

// Skipped minutes (no samples at all for a while) still advance the fixed
// shadow's window: the fixed baseline pays keep-alive for idle minutes
// inside the window and goes cold after it lapses.
func TestFixedWindowAcrossSkippedMinutes(t *testing.T) {
	cat := testCatalog(t)
	asg := models.Assignment{0}
	a := newAccountant(t, Config{Catalog: cat, Assignment: asg, Window: 2, SeriesWindow: 64})

	inv := func(m int, cold bool) {
		a.ObserveInvocation(telemetry.InvocationSample{Minute: m, Function: 0, Variant: "alpha-lo", Cold: cold, Count: 1, AccuracyPct: 60})
	}
	inv(0, true) // first ever: cold everywhere
	// Nothing at minutes 1..4; next sample jumps the clock to minute 5.
	inv(5, true) // window (2) lapsed after minute 2 → fixed shadow cold again
	a.ObserveMinute(telemetry.MinuteSample{Minute: 6})

	rep := a.Report()
	fr := rep.Functions[0]
	// Fixed shadow alive during minutes 1 and 2 (after the minute-0 hit),
	// then again during minute 6 (after the minute-5 hit): 3 minutes.
	if fr.FixedHigh.KeepAliveMBMinutes != 3*2048 {
		t.Errorf("fixed shadow KaM = %v MB-min, want %v", fr.FixedHigh.KeepAliveMBMinutes, 3*2048.0)
	}
	if fr.FixedHigh.ColdStarts != 2 {
		t.Errorf("fixed shadow colds = %d, want 2", fr.FixedHigh.ColdStarts)
	}
	if fr.Never.ColdStarts != 2 || fr.Oracle.ColdStarts != 0 {
		t.Errorf("never/oracle colds = %d/%d, want 2/0", fr.Never.ColdStarts, fr.Oracle.ColdStarts)
	}
	// Oracle holds the highest variant exactly during the 2 invoked minutes.
	if fr.Oracle.KeepAliveMBMinutes != 2*2048 {
		t.Errorf("oracle KaM = %v, want %v", fr.Oracle.KeepAliveMBMinutes, 2*2048.0)
	}
}

// A sample carrying an unknown variant name (foreign feed) is attributed
// to the family's highest variant rather than dropped.
func TestUnknownVariantFallsBackToHighest(t *testing.T) {
	cat := testCatalog(t)
	a := newAccountant(t, Config{Catalog: cat, Assignment: models.Assignment{0}})
	a.ObserveInvocation(telemetry.InvocationSample{Minute: 0, Function: 0, Variant: "mystery", Count: 3, AccuracyPct: 50})
	rep := a.Report()
	if got := rep.Functions[0].Actual.MeanAccuracyPct; got != 90 {
		t.Errorf("unknown variant mean accuracy %v, want highest variant's 90", got)
	}
	// Out-of-range functions and variants are dropped, not panics.
	a.ObserveInvocation(telemetry.InvocationSample{Minute: 0, Function: 99, Count: 1})
	a.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 0, Function: 0, Variant: 99})
	a.ObserveDowngrade(telemetry.DowngradeSample{Minute: 0, Function: -3})
	if got := a.Report().Total.Actual.Invocations; got != 3 {
		t.Errorf("invocations after junk samples = %d, want 3", got)
	}
}

// Downgrade events roll the clock too: a downgrade for minute t arrives
// before any engine sample of t (controller events flush first), so it
// must close minute t-1 exactly as a keep-alive sample would.
func TestDowngradeAdvancesMinute(t *testing.T) {
	cat := testCatalog(t)
	a := newAccountant(t, Config{Catalog: cat, Assignment: models.Assignment{0}, Window: 5})
	a.ObserveInvocation(telemetry.InvocationSample{Minute: 0, Function: 0, Variant: "alpha-hi", Cold: true, Count: 1, AccuracyPct: 90})
	a.ObserveDowngrade(telemetry.DowngradeSample{Minute: 3, Function: 0, FromVariant: 1, ToVariant: 0})
	rep := a.Report()
	if rep.Minute != 3 {
		t.Errorf("open minute = %d, want 3", rep.Minute)
	}
	if rep.Functions[0].Downgrades != 1 {
		t.Errorf("downgrades = %d, want 1", rep.Functions[0].Downgrades)
	}
	// Minutes 1..3 opened with the fixed window live (invocation at 0,
	// window 5): 3 fixed-alive minutes so far.
	if got := rep.Functions[0].FixedHigh.KeepAliveMBMinutes; got != 3*2048 {
		t.Errorf("fixed KaM = %v, want %v", got, 3*2048.0)
	}
}

// New must reject broken configurations.
func TestNewValidation(t *testing.T) {
	cat := testCatalog(t)
	cases := []Config{
		{},             // nil catalog
		{Catalog: cat}, // empty assignment
		{Catalog: cat, Assignment: models.Assignment{7}}, // family out of range
		{Catalog: cat, Assignment: models.Assignment{0}, Cost: cluster.CostModel{USDPerGBSecond: -1}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
	a := newAccountant(t, Config{Catalog: cat, Assignment: models.Assignment{0, 1}})
	if a.Window() != cluster.DefaultKeepAliveWindow {
		t.Errorf("default window = %d, want %d", a.Window(), cluster.DefaultKeepAliveWindow)
	}
}

// Steady-state observation must not allocate: one warm minute of samples
// (keep-alive per function, minute rollup, a few invocations) runs with
// zero allocations once the accountant is constructed, like the telemetry
// buffer and the sharded controller's idle path.
func TestAccountantIdleMinuteZeroAllocs(t *testing.T) {
	cat := testCatalog(t)
	asg := models.Assignment{0, 1, 0, 1}
	a := newAccountant(t, Config{Catalog: cat, Assignment: asg, SeriesWindow: 128})

	minute := 0
	observeMinute := func() {
		for fn := range asg {
			a.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: minute, Function: fn, Variant: 0, MemMB: 512})
		}
		a.ObserveMinute(telemetry.MinuteSample{Minute: minute})
		a.ObserveInvocation(telemetry.InvocationSample{Minute: minute, Function: 0, Variant: "alpha-lo", Count: 2, AccuracyPct: 60})
		a.ObserveInvocation(telemetry.InvocationSample{Minute: minute, Function: 1, Variant: "beta-lo", Cold: true, Count: 1, AccuracyPct: 70})
		minute++
	}
	for i := 0; i < 30; i++ { // warm up past the first hour-bucket writes
		observeMinute()
	}
	if avg := testing.AllocsPerRun(200, observeMinute); avg != 0 {
		t.Errorf("steady-state minute allocates %v times, want 0", avg)
	}
}
