package attribution

import "github.com/pulse-serverless/pulse/internal/tournament"

// Report() projects the arena's snapshot into the classic three-baseline
// attribution shape. Every float is computed by the tournament package at
// snapshot time, from the integer counters the stream accumulated — in a
// fixed order (variants within a function, functions within the total) —
// so two accountants that saw equivalent streams produce bit-identical
// reports no matter how the feeds fragmented or batched their samples.

// Tally is one policy's account of one function (or, in Report.Total, the
// whole cluster).
type Tally = tournament.Tally

// Savings is the live policy's net position versus one shadow baseline.
// Positive numbers favor the live policy.
type Savings = tournament.Savings

// FunctionReport is one function's full attribution: the live account, the
// three shadow accounts, and the pairwise savings.
type FunctionReport struct {
	Function     int     `json:"function"`
	Family       string  `json:"family"`
	Downgrades   int     `json:"downgrades"`
	ColdStartPct float64 `json:"cold_start_pct"` // live cold starts / invocations × 100

	Actual    Tally `json:"actual"`
	FixedHigh Tally `json:"fixed_high"`
	Never     Tally `json:"never"`
	Oracle    Tally `json:"oracle"`

	VsFixed  Savings `json:"vs_fixed"`
	VsNever  Savings `json:"vs_never"`
	VsOracle Savings `json:"vs_oracle"`
}

// Report is a full attribution snapshot.
type Report struct {
	// Minute is the open (still accumulating) minute, -1 before any sample.
	Minute int `json:"minute"`
	// WindowMinutes is the fixed-high shadow's keep-alive window.
	WindowMinutes int              `json:"window_minutes"`
	Functions     []FunctionReport `json:"functions"`
	// Total aggregates every function (Function = -1, Family = "").
	Total FunctionReport `json:"total"`
}

// Baseline entrant indices inside every Accountant's arena.
const (
	entFixedHigh = 0
	entNever     = 1
	entOracle    = 2

	// NumBaselines is how many built-in entrants (fixed-high, never,
	// oracle) lead every Accountant's entrant list; indices at or past it
	// are tournament extras from Config.Entrants.
	NumBaselines = 3
)

// Report computes the attribution snapshot. It allocates (the caller gets
// an independent copy); the hot observation path never calls it.
func (a *Accountant) Report() Report {
	s := a.arena.Snapshot()
	r := Report{
		Minute:        s.Minute,
		WindowMinutes: a.window,
		Functions:     make([]FunctionReport, len(s.Functions)),
	}
	for i := range s.Functions {
		r.Functions[i] = toFunctionReport(&s.Functions[i])
	}
	r.Total = toFunctionReport(&s.Total)
	return r
}

// toFunctionReport projects one arena ledger onto the classic shape:
// entrants 0..2 are always the fixed-high, never, and oracle baselines.
func toFunctionReport(fl *tournament.FunctionLedger) FunctionReport {
	return FunctionReport{
		Function:     fl.Function,
		Family:       fl.Family,
		Downgrades:   fl.Downgrades,
		ColdStartPct: fl.ColdStartPct,
		Actual:       fl.Actual,
		FixedHigh:    fl.Shadows[entFixedHigh],
		Never:        fl.Shadows[entNever],
		Oracle:       fl.Shadows[entOracle],
		VsFixed:      fl.Savings[entFixedHigh],
		VsNever:      fl.Savings[entNever],
		VsOracle:     fl.Savings[entOracle],
	}
}
