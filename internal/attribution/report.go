package attribution

// Report() and Series() snapshot the accountant. Every float in a Report
// is computed here, at snapshot time, from the integer counters the stream
// accumulated — in a fixed order (variants within a function, functions
// within the total) — so two accountants that saw equivalent streams
// produce bit-identical reports no matter how the feeds fragmented or
// batched their samples.

// Tally is one policy's account of one function (or, in Report.Total, the
// whole cluster).
type Tally struct {
	Invocations int `json:"invocations"`
	WarmStarts  int `json:"warm_starts"`
	ColdStarts  int `json:"cold_starts"`
	// KeepAliveMBMinutes is the keep-alive footprint: MB kept alive summed
	// over minutes (divide by 1024 for the paper's GB-minutes).
	KeepAliveMBMinutes float64 `json:"keep_alive_mb_minutes"`
	KeepAliveCostUSD   float64 `json:"keep_alive_cost_usd"`
	// MeanAccuracyPct is the invocation-weighted mean accuracy delivered.
	MeanAccuracyPct float64 `json:"mean_accuracy_pct"`
	// AccuracyMinutesPct is the keep-alive quality delivered: kept-alive
	// variant-minutes weighted by each variant's accuracy (percent ×
	// minutes). Higher means more high-quality capacity was held warm.
	AccuracyMinutesPct float64 `json:"accuracy_minutes_pct"`
}

// Savings is the live policy's net position versus one shadow baseline.
// Positive numbers favor the live policy.
type Savings struct {
	// KeepAliveCostUSD = baseline cost − actual cost.
	KeepAliveCostUSD float64 `json:"keep_alive_cost_usd"`
	// KeepAliveGBMinutes = (baseline − actual) footprint, in GB-minutes.
	KeepAliveGBMinutes float64 `json:"keep_alive_gb_minutes"`
	// ColdStartsAvoided = baseline cold starts − actual cold starts
	// (negative when the live policy incurred more).
	ColdStartsAvoided int `json:"cold_starts_avoided"`
	// AccuracyDeltaPct = actual mean accuracy − baseline mean accuracy
	// (the baselines always serve the highest variant, so this is ≤ 0 and
	// quantifies the accuracy paid for the savings).
	AccuracyDeltaPct float64 `json:"accuracy_delta_pct"`
}

// FunctionReport is one function's full attribution: the live account, the
// three shadow accounts, and the pairwise savings.
type FunctionReport struct {
	Function     int     `json:"function"`
	Family       string  `json:"family"`
	Downgrades   int     `json:"downgrades"`
	ColdStartPct float64 `json:"cold_start_pct"` // live cold starts / invocations × 100

	Actual    Tally `json:"actual"`
	FixedHigh Tally `json:"fixed_high"`
	Never     Tally `json:"never"`
	Oracle    Tally `json:"oracle"`

	VsFixed  Savings `json:"vs_fixed"`
	VsNever  Savings `json:"vs_never"`
	VsOracle Savings `json:"vs_oracle"`
}

// Report is a full attribution snapshot.
type Report struct {
	// Minute is the open (still accumulating) minute, -1 before any sample.
	Minute int `json:"minute"`
	// WindowMinutes is the fixed-high shadow's keep-alive window.
	WindowMinutes int              `json:"window_minutes"`
	Functions     []FunctionReport `json:"functions"`
	// Total aggregates every function (Function = -1, Family = "").
	Total FunctionReport `json:"total"`
}

// Report computes the attribution snapshot. It allocates (the caller gets
// an independent copy); the hot observation path never calls it.
func (a *Accountant) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Report{
		Minute:        a.cur,
		WindowMinutes: a.window,
		Functions:     make([]FunctionReport, len(a.fns)),
	}
	r.Total.Function = -1
	for fn := range a.fns {
		fr := a.functionReport(fn)
		r.Functions[fn] = fr
		addTally(&r.Total.Actual, fr.Actual)
		addTally(&r.Total.FixedHigh, fr.FixedHigh)
		addTally(&r.Total.Never, fr.Never)
		addTally(&r.Total.Oracle, fr.Oracle)
		r.Total.Downgrades += fr.Downgrades
	}
	finishTally(&r.Total.Actual)
	finishTally(&r.Total.FixedHigh)
	finishTally(&r.Total.Never)
	finishTally(&r.Total.Oracle)
	finishFunctionReport(&r.Total)
	return r
}

// functionReport derives one function's report from its counters. Called
// with a.mu held.
func (a *Accountant) functionReport(fn int) FunctionReport {
	f := &a.fns[fn]
	fi := &a.fams[a.famOf[fn]]
	fr := FunctionReport{
		Function:   fn,
		Family:     fi.name,
		Downgrades: f.downgrades,
	}

	// Live policy: kept-alive minutes per variant × that variant's memory,
	// cost, and accuracy; invocation accuracy weighted per variant. A
	// retired slot's ledgers were folded (in this same variant order) into
	// the fixed-size sums at deregistration, so the values — and the float
	// rounding — are identical either way.
	if f.retired && f.aliveMin == nil {
		fr.Actual.KeepAliveMBMinutes = f.foldedKaMBMin
		fr.Actual.KeepAliveCostUSD = f.foldedKaCost
		fr.Actual.AccuracyMinutesPct = f.foldedAccMin
		fr.Actual.MeanAccuracyPct = f.foldedAccSum
	} else {
		for v := 0; v < len(fi.memMB); v++ {
			m := float64(f.aliveMin[v])
			fr.Actual.KeepAliveMBMinutes += m * fi.memMB[v]
			fr.Actual.KeepAliveCostUSD += m * fi.costPerMin[v]
			fr.Actual.AccuracyMinutesPct += m * fi.accPct[v]
			fr.Actual.MeanAccuracyPct += float64(f.invByVariant[v]) * fi.accPct[v]
		}
	}
	fr.Actual.Invocations = f.invocations
	fr.Actual.ColdStarts = f.actualCold
	fr.Actual.WarmStarts = f.invocations - f.actualCold

	// Shadows all hold the highest-quality variant. Fixed-high keeps it
	// alive fixedAliveMin minutes; never holds nothing; the oracle holds
	// it exactly during invoked minutes and never goes cold.
	hm, hc, ha := fi.memMB[fi.highest], fi.costPerMin[fi.highest], fi.accPct[fi.highest]
	shadowTally := func(aliveMin, cold int) Tally {
		m := float64(aliveMin)
		return Tally{
			Invocations:        f.invocations,
			WarmStarts:         f.invocations - cold,
			ColdStarts:         cold,
			KeepAliveMBMinutes: m * hm,
			KeepAliveCostUSD:   m * hc,
			AccuracyMinutesPct: m * ha,
			MeanAccuracyPct:    float64(f.invocations) * ha,
		}
	}
	fr.FixedHigh = shadowTally(f.fixedAliveMin, f.fixedCold)
	fr.Never = shadowTally(0, f.neverCold)
	fr.Oracle = shadowTally(f.invokedMin, 0)

	finishTally(&fr.Actual)
	finishTally(&fr.FixedHigh)
	finishTally(&fr.Never)
	finishTally(&fr.Oracle)
	finishFunctionReport(&fr)
	return fr
}

// addTally folds src's additive fields into dst. src.MeanAccuracyPct is
// already a finished mean, so it is re-weighted by invocations back into
// sum form; finishTally on dst divides it out again.
func addTally(dst *Tally, src Tally) {
	dst.Invocations += src.Invocations
	dst.WarmStarts += src.WarmStarts
	dst.ColdStarts += src.ColdStarts
	dst.KeepAliveMBMinutes += src.KeepAliveMBMinutes
	dst.KeepAliveCostUSD += src.KeepAliveCostUSD
	dst.AccuracyMinutesPct += src.AccuracyMinutesPct
	dst.MeanAccuracyPct += src.MeanAccuracyPct * float64(src.Invocations)
}

// finishTally converts MeanAccuracyPct from its accumulated form into the
// invocation-weighted mean.
func finishTally(t *Tally) {
	if t.Invocations > 0 {
		t.MeanAccuracyPct /= float64(t.Invocations)
	}
}

// finishFunctionReport derives the savings and rate fields from the
// finished tallies.
func finishFunctionReport(fr *FunctionReport) {
	if fr.Actual.Invocations > 0 {
		fr.ColdStartPct = 100 * float64(fr.Actual.ColdStarts) / float64(fr.Actual.Invocations)
	}
	fr.VsFixed = savings(fr.Actual, fr.FixedHigh)
	fr.VsNever = savings(fr.Actual, fr.Never)
	fr.VsOracle = savings(fr.Actual, fr.Oracle)
}

func savings(actual, baseline Tally) Savings {
	return Savings{
		KeepAliveCostUSD:   baseline.KeepAliveCostUSD - actual.KeepAliveCostUSD,
		KeepAliveGBMinutes: (baseline.KeepAliveMBMinutes - actual.KeepAliveMBMinutes) / 1024,
		ColdStartsAvoided:  baseline.ColdStarts - actual.ColdStarts,
		AccuracyDeltaPct:   actual.MeanAccuracyPct - baseline.MeanAccuracyPct,
	}
}

// Series returns the trailing time-series for one metric, oldest point
// first: the last window minutes at minute resolution, or — with hourly
// set — the last window hours from the rollup ring (gauges averaged,
// amounts summed; Point.Minute is the hour's first minute). The open
// minute is not included; it is still accumulating.
func (a *Accountant) Series(metric Metric, window int, hourly bool) []Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	if metric < 0 || metric >= numMetrics || a.cur <= 0 {
		return nil
	}
	return a.store.series(metric, a.cur-1, window, hourly, nil)
}
