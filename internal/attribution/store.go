package attribution

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/tournament"
)

// DefaultSeriesWindow is the minute-resolution retention of the
// time-series store: one day.
const DefaultSeriesWindow = tournament.DefaultSeriesWindow

// Metric identifies one per-minute aggregate tracked by the store. The
// enum predates the tournament refactor and keeps the classic /timeseries
// wire names stable; each metric maps onto a tournament selector (shared
// live account or a baseline entrant's channel). Entrants beyond the
// baselines are addressed as savings_vs_<entrant>_usd directly against the
// arena.
type Metric int

// The tracked metrics. kam_* are point-in-time gauges (MB kept alive
// during the minute) and roll up hourly by mean; the rest are per-minute
// amounts and roll up by sum.
const (
	MetricKaMActualMB Metric = iota
	MetricKaMFixedMB
	MetricKaMOracleMB
	MetricCostActualUSD
	MetricCostFixedUSD
	MetricCostOracleUSD
	MetricSavingsVsFixedUSD
	MetricColdActual
	MetricColdFixed
	MetricColdNever
	MetricInvocations
	numMetrics
)

var metricNames = [numMetrics]string{
	MetricKaMActualMB:       "kam_actual_mb",
	MetricKaMFixedMB:        "kam_fixed_mb",
	MetricKaMOracleMB:       "kam_oracle_mb",
	MetricCostActualUSD:     "cost_actual_usd",
	MetricCostFixedUSD:      "cost_fixed_usd",
	MetricCostOracleUSD:     "cost_oracle_usd",
	MetricSavingsVsFixedUSD: "savings_vs_fixed_usd",
	MetricColdActual:        "cold_actual",
	MetricColdFixed:         "cold_fixed",
	MetricColdNever:         "cold_never",
	MetricInvocations:       "invocations",
}

// metricSelectors maps each classic metric onto its arena address.
var metricSelectors = [numMetrics]tournament.Selector{
	MetricKaMActualMB:       tournament.Shared(tournament.ChanKaMMB),
	MetricKaMFixedMB:        {Entrant: entFixedHigh, Channel: tournament.ChanKaMMB},
	MetricKaMOracleMB:       {Entrant: entOracle, Channel: tournament.ChanKaMMB},
	MetricCostActualUSD:     tournament.Shared(tournament.ChanCostUSD),
	MetricCostFixedUSD:      {Entrant: entFixedHigh, Channel: tournament.ChanCostUSD},
	MetricCostOracleUSD:     {Entrant: entOracle, Channel: tournament.ChanCostUSD},
	MetricSavingsVsFixedUSD: {Entrant: entFixedHigh, Channel: tournament.ChanSavingsUSD},
	MetricColdActual:        tournament.Shared(tournament.ChanCold),
	MetricColdFixed:         {Entrant: entFixedHigh, Channel: tournament.ChanCold},
	MetricColdNever:         {Entrant: entNever, Channel: tournament.ChanCold},
	MetricInvocations:       tournament.Shared(tournament.ChanInvocations),
}

// metricSelector resolves a metric to its arena selector, reporting false
// for out-of-range metrics.
func metricSelector(m Metric) (tournament.Selector, bool) {
	if m < 0 || m >= numMetrics {
		return tournament.Selector{}, false
	}
	return metricSelectors[m], true
}

// String returns the wire name used by the /timeseries endpoint.
func (m Metric) String() string {
	if m < 0 || m >= numMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// MetricNames lists every metric wire name, in declaration order.
func MetricNames() []string {
	out := make([]string, numMetrics)
	for i, n := range metricNames {
		out[i] = n
	}
	return out
}

// ParseMetric resolves a wire name back to its Metric.
func ParseMetric(name string) (Metric, error) {
	for i, n := range metricNames {
		if n == name {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("attribution: unknown metric %q", name)
}

// Point is one time-series sample.
type Point = tournament.Point
