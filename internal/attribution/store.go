package attribution

import "fmt"

// DefaultSeriesWindow is the minute-resolution retention of the
// time-series store: one day.
const DefaultSeriesWindow = 1440

// Metric identifies one per-minute aggregate tracked by the store.
type Metric int

// The tracked metrics. kam_* are point-in-time gauges (MB kept alive
// during the minute) and roll up hourly by mean; the rest are per-minute
// amounts and roll up by sum.
const (
	MetricKaMActualMB Metric = iota
	MetricKaMFixedMB
	MetricKaMOracleMB
	MetricCostActualUSD
	MetricCostFixedUSD
	MetricCostOracleUSD
	MetricSavingsVsFixedUSD
	MetricColdActual
	MetricColdFixed
	MetricColdNever
	MetricInvocations
	numMetrics
)

var metricNames = [numMetrics]string{
	MetricKaMActualMB:       "kam_actual_mb",
	MetricKaMFixedMB:        "kam_fixed_mb",
	MetricKaMOracleMB:       "kam_oracle_mb",
	MetricCostActualUSD:     "cost_actual_usd",
	MetricCostFixedUSD:      "cost_fixed_usd",
	MetricCostOracleUSD:     "cost_oracle_usd",
	MetricSavingsVsFixedUSD: "savings_vs_fixed_usd",
	MetricColdActual:        "cold_actual",
	MetricColdFixed:         "cold_fixed",
	MetricColdNever:         "cold_never",
	MetricInvocations:       "invocations",
}

// gauge metrics average (rather than sum) when rolled up hourly.
var metricGauge = [numMetrics]bool{
	MetricKaMActualMB: true,
	MetricKaMFixedMB:  true,
	MetricKaMOracleMB: true,
}

// String returns the wire name used by the /timeseries endpoint.
func (m Metric) String() string {
	if m < 0 || m >= numMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// MetricNames lists every metric wire name, in declaration order.
func MetricNames() []string {
	out := make([]string, numMetrics)
	for i, n := range metricNames {
		out[i] = n
	}
	return out
}

// ParseMetric resolves a wire name back to its Metric.
func ParseMetric(name string) (Metric, error) {
	for i, n := range metricNames {
		if n == name {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("attribution: unknown metric %q", name)
}

// Point is one time-series sample.
type Point struct {
	Minute int     `json:"minute"`
	Value  float64 `json:"value"`
}

// store is a fixed-capacity windowed time-series: a ring of per-minute
// aggregates (idx = minute % window, with a stamp array to detect stale
// slots) plus an hourly rollup ring of the same bucket count, extending
// the queryable horizon 60×. Pushes allocate nothing; all storage is laid
// out at construction. Callers synchronize externally (the Accountant's
// mutex).
type store struct {
	window int
	stamps []int                 // minute stored in each slot, -1 when empty
	vals   [][numMetrics]float64 // per-minute aggregates

	hourStamps []int // hour (minute/60) stored in each rollup slot
	hourVals   [][numMetrics]float64
	hourCnt    []int // minutes folded into the open rollup
}

func newStore(window int) *store {
	s := &store{
		window:     window,
		stamps:     make([]int, window),
		vals:       make([][numMetrics]float64, window),
		hourStamps: make([]int, window),
		hourVals:   make([][numMetrics]float64, window),
		hourCnt:    make([]int, window),
	}
	for i := range s.stamps {
		s.stamps[i] = -1
		s.hourStamps[i] = -1
	}
	return s
}

// push records minute m's aggregates, overwriting whatever the slot held a
// window ago, and folds the minute into its hourly rollup bucket.
func (s *store) push(m int, v [numMetrics]float64) {
	if m < 0 {
		return
	}
	i := m % s.window
	s.stamps[i] = m
	s.vals[i] = v

	h := m / 60
	hi := h % s.window
	if s.hourStamps[hi] != h {
		s.hourStamps[hi] = h
		s.hourVals[hi] = [numMetrics]float64{}
		s.hourCnt[hi] = 0
	}
	for k := range v {
		s.hourVals[hi][k] += v[k]
	}
	s.hourCnt[hi]++
}

// at returns metric's value for one closed minute, reporting false when
// the slot is empty or has been overwritten by a newer minute.
func (s *store) at(metric Metric, m int) (float64, bool) {
	if m < 0 {
		return 0, false
	}
	i := m % s.window
	if s.stamps[i] != m {
		return 0, false
	}
	return s.vals[i][metric], true
}

// series appends the most recent points for metric within the trailing
// window [now-window+1, now] to dst, oldest first. hourly switches to the
// rollup ring (window then counts hours); gauge metrics report the hourly
// mean, amounts the hourly sum.
func (s *store) series(metric Metric, now, window int, hourly bool, dst []Point) []Point {
	if now < 0 || window <= 0 {
		return dst
	}
	if hourly {
		nowH := now / 60
		if window > s.window {
			window = s.window
		}
		for h := nowH - window + 1; h <= nowH; h++ {
			if h < 0 {
				continue
			}
			hi := h % s.window
			if s.hourStamps[hi] != h || s.hourCnt[hi] == 0 {
				continue
			}
			v := s.hourVals[hi][metric]
			if metricGauge[metric] {
				v /= float64(s.hourCnt[hi])
			}
			dst = append(dst, Point{Minute: h * 60, Value: v})
		}
		return dst
	}
	if window > s.window {
		window = s.window
	}
	for m := now - window + 1; m <= now; m++ {
		if m < 0 {
			continue
		}
		i := m % s.window
		if s.stamps[i] != m {
			continue
		}
		dst = append(dst, Point{Minute: m, Value: s.vals[i][metric]})
	}
	return dst
}
