package attribution

// Tournament-facing behavior of the Accountant: extra entrants ride the
// same arena without perturbing the classic three-baseline report, their
// ledgers fold at retirement like the shared ones, and a fully loaded
// arena (three baselines plus the whole packaged roster — six entrants)
// still observes an idle steady-state minute without allocating.

import (
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/tournament"
	"github.com/pulse-serverless/pulse/internal/tournament/roster"
)

// rosterEntrants builds the full packaged roster for the test catalog.
func rosterEntrants(t *testing.T, cat *models.Catalog) []tournament.ShadowEntrant {
	t.Helper()
	ents, err := roster.Build(roster.Names(), cat, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return ents
}

// feedSyntheticStream drives a deterministic mixed workload — keep-alive
// decisions, batched invocations, downgrades, and a mid-run deregister —
// through the accountant.
func feedSyntheticStream(acct *Accountant, cat *models.Catalog, asg models.Assignment, minutes int) {
	for m := 0; m < minutes; m++ {
		for fn := range asg {
			fam := cat.Families[asg[fn]]
			if (fn+m)%4 != 3 {
				acct.ObserveKeepAlive(telemetry.KeepAliveSample{
					Minute: m, Function: fn, Variant: (fn + m) % len(fam.Variants),
				})
			}
			if (fn+m)%3 != 0 {
				acct.ObserveInvocation(telemetry.InvocationSample{
					Minute: m, Function: fn,
					Variant: fam.Variants[m%len(fam.Variants)].Name,
					Cold:    (fn+m)%5 == 0, Count: 1 + (fn+m)%3,
				})
			}
		}
		if m%7 == 0 {
			acct.ObserveDowngrade(telemetry.DowngradeSample{Minute: m, Function: m % len(asg)})
		}
		if m == minutes/2 {
			acct.ObserveDeregister(telemetry.DeregisterSample{Minute: m, Function: 1})
		}
		acct.ObserveMinute(telemetry.MinuteSample{Minute: m})
	}
}

// Adding entrants must not change a single bit of the classic
// three-baseline report or any classic metric series: the baselines keep
// their own ledgers and accumulators, and the accounting order within
// each entrant is independent of how many entrants follow it.
func TestTournamentExtrasDoNotPerturbClassicReport(t *testing.T) {
	cat := testCatalog(t)
	asg := uniform(cat, 5)
	plain := newAccountant(t, Config{Catalog: cat, Assignment: asg})
	loaded := newAccountant(t, Config{Catalog: cat, Assignment: asg, Entrants: rosterEntrants(t, cat)})

	const minutes = 90
	feedSyntheticStream(plain, cat, asg, minutes)
	feedSyntheticStream(loaded, cat, asg, minutes)

	if p, l := plain.Report(), loaded.Report(); !reflect.DeepEqual(p, l) {
		t.Errorf("extra entrants perturbed the classic report:\nplain  %+v\nloaded %+v", p, l)
	}
	for m := Metric(0); m < numMetrics; m++ {
		p := plain.Series(m, minutes, false)
		l := loaded.Series(m, minutes, false)
		if !reflect.DeepEqual(p, l) {
			t.Errorf("metric %v series diverged with extras attached", m)
		}
		ph := plain.Series(m, 4, true)
		lh := loaded.Series(m, 4, true)
		if !reflect.DeepEqual(ph, lh) {
			t.Errorf("metric %v hourly series diverged with extras attached", m)
		}
		pv, pok := plain.MetricAt(m, minutes-1)
		lv, lok := loaded.MetricAt(m, minutes-1)
		if pok != lok || pv != lv {
			t.Errorf("metric %v open-minute value diverged: %v/%v vs %v/%v", m, pv, pok, lv, lok)
		}
	}

	names := loaded.EntrantNames()
	want := append([]string{BaselineFixedHigh, BaselineNever, BaselineOracle}, roster.Names()...)
	if !reflect.DeepEqual(names, want) {
		t.Errorf("entrant order = %v, want %v", names, want)
	}
	// Every extra entrant has a live savings series once minutes closed.
	for i := 3; i < len(names); i++ {
		sel := tournament.Selector{Entrant: i, Channel: tournament.ChanSavingsUSD}
		if pts := loaded.Arena().Series(sel, minutes, false); len(pts) == 0 {
			t.Errorf("entrant %s: no savings series", names[i])
		}
	}
}

// Retiring a slot folds every entrant's per-variant ledgers — not just the
// shared ones — into fixed-size sums with bit-identical snapshot output.
func TestTournamentEntrantLedgerFoldAtRetire(t *testing.T) {
	cat := testCatalog(t)
	asg := uniform(cat, 4)
	acct := newAccountant(t, Config{Catalog: cat, Assignment: asg, Entrants: rosterEntrants(t, cat)})

	for m := 0; m < 20; m++ {
		for fn := range asg {
			fam := cat.Families[asg[fn]]
			acct.ObserveInvocation(telemetry.InvocationSample{
				Minute: m, Function: fn,
				Variant: fam.Variants[(fn+m)%len(fam.Variants)].Name,
				Cold:    m == 0, Count: 1 + fn,
			})
		}
		acct.ObserveMinute(telemetry.MinuteSample{Minute: m})
	}

	before := acct.Arena().Snapshot()
	acct.ObserveDeregister(telemetry.DeregisterSample{Minute: 19, Function: 2})
	after := acct.Arena().Snapshot()
	if !reflect.DeepEqual(before.Functions[2], after.Functions[2]) {
		t.Errorf("folding changed the retired function's ledger:\nbefore %+v\nafter  %+v",
			before.Functions[2], after.Functions[2])
	}
	if !reflect.DeepEqual(before.Total, after.Total) {
		t.Error("folding changed the total ledger")
	}
	if !acct.Arena().LedgersReleased(2) {
		t.Error("retired slot still holds per-variant ledgers")
	}
	if acct.Arena().LedgersReleased(0) {
		t.Error("live slot reported as released")
	}
}

// Entrant name collisions with the baselines (or each other) are
// configuration errors, not silent shadowing.
func TestTournamentRejectsDuplicateEntrantNames(t *testing.T) {
	cat := testCatalog(t)
	asg := uniform(cat, 2)
	if _, err := New(Config{Catalog: cat, Assignment: asg, Entrants: []tournament.ShadowEntrant{
		tournament.NewNever(BaselineNever),
	}}); err == nil {
		t.Error("entrant shadowing a baseline name was accepted")
	}
	if _, err := New(Config{Catalog: cat, Assignment: asg, Entrants: []tournament.ShadowEntrant{
		tournament.NewFixedWindow("twin", 5),
		tournament.NewFixedWindow("twin", 9),
	}}); err == nil {
		t.Error("duplicate entrant names were accepted")
	}
}

// With the whole roster attached — six entrants — a steady-state minute
// (keep-alives, a batched and a cold invocation, the barrier) must not
// allocate: the hot path is integer counters plus preallocated rows, and
// every packaged entrant's KeepAlive/Record is allocation-free.
func TestTournamentIdleMinuteSixEntrantsNoSteadyStateAllocs(t *testing.T) {
	cat := testCatalog(t)
	asg := models.Assignment{0, 1, 0, 1}
	a := newAccountant(t, Config{
		Catalog: cat, Assignment: asg, SeriesWindow: 128,
		Entrants: rosterEntrants(t, cat),
	})
	if got := len(a.EntrantNames()); got != 6 {
		t.Fatalf("expected 6 entrants, got %d", got)
	}

	minute := 0
	observeMinute := func() {
		for fn := range asg {
			a.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: minute, Function: fn, Variant: 0, MemMB: 512})
		}
		a.ObserveMinute(telemetry.MinuteSample{Minute: minute})
		a.ObserveInvocation(telemetry.InvocationSample{Minute: minute, Function: 0, Variant: "alpha-lo", Count: 2, AccuracyPct: 60})
		a.ObserveInvocation(telemetry.InvocationSample{Minute: minute, Function: 1, Variant: "beta-lo", Cold: true, Count: 1, AccuracyPct: 70})
		minute++
	}
	for i := 0; i < 30; i++ { // warm up past the first hour-bucket writes
		observeMinute()
	}
	if avg := testing.AllocsPerRun(200, observeMinute); avg != 0 {
		t.Errorf("steady-state minute with 6 entrants allocates %v times, want 0", avg)
	}
}
