package attribution

import "testing"

// The store's ring/rollup scenarios moved to the tournament package with
// the store itself; the Metric enum and its wire names stay here.

func TestParseMetricRoundTrip(t *testing.T) {
	names := MetricNames()
	if len(names) != int(numMetrics) {
		t.Fatalf("MetricNames returned %d names, want %d", len(names), numMetrics)
	}
	for i, n := range names {
		m, err := ParseMetric(n)
		if err != nil {
			t.Errorf("ParseMetric(%q): %v", n, err)
		}
		if m != Metric(i) || m.String() != n {
			t.Errorf("round trip %q -> %v -> %q", n, m, m.String())
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("ParseMetric accepted unknown name")
	}
	if got := Metric(-1).String(); got != "metric(-1)" {
		t.Errorf("out-of-range String = %q", got)
	}
	// Every metric must resolve to an arena selector.
	for i := Metric(0); i < numMetrics; i++ {
		if _, ok := metricSelector(i); !ok {
			t.Errorf("metric %v has no selector", i)
		}
	}
	if _, ok := metricSelector(numMetrics); ok {
		t.Error("out-of-range metric resolved to a selector")
	}
}
