package attribution

import (
	"reflect"
	"testing"
)

func pushMinute(s *store, m int, val float64) {
	var v [numMetrics]float64
	for k := range v {
		v[k] = val
	}
	s.push(m, v)
}

func TestStoreMinuteWindowAndEviction(t *testing.T) {
	s := newStore(4)
	for m := 0; m < 10; m++ {
		pushMinute(s, m, float64(m))
	}
	// Only minutes 6..9 survive a window of 4.
	got := s.series(MetricInvocations, 9, 10, false, nil)
	want := []Point{{6, 6}, {7, 7}, {8, 8}, {9, 9}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("series after eviction = %v, want %v", got, want)
	}
	// A narrower window trims from the old end.
	got = s.series(MetricInvocations, 9, 2, false, nil)
	if want = []Point{{8, 8}, {9, 9}}; !reflect.DeepEqual(got, want) {
		t.Errorf("narrow window = %v, want %v", got, want)
	}
	// Asking as-of an older now excludes newer minutes still in the ring.
	got = s.series(MetricInvocations, 8, 2, false, nil)
	if want = []Point{{7, 7}, {8, 8}}; !reflect.DeepEqual(got, want) {
		t.Errorf("older now = %v, want %v", got, want)
	}
}

func TestStoreSkippedMinutesLeaveGaps(t *testing.T) {
	s := newStore(8)
	pushMinute(s, 0, 1)
	pushMinute(s, 3, 4)
	got := s.series(MetricColdActual, 3, 8, false, nil)
	want := []Point{{0, 1}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gapped series = %v, want %v", got, want)
	}
}

func TestStoreHourlyRollup(t *testing.T) {
	s := newStore(256)
	// Two full hours: hour 0 pushes value 2 every minute, hour 1 value 5.
	for m := 0; m < 120; m++ {
		val := 2.0
		if m >= 60 {
			val = 5.0
		}
		pushMinute(s, m, val)
	}
	// Gauge metric (kam_actual_mb): hourly mean.
	got := s.series(MetricKaMActualMB, 119, 2, true, nil)
	want := []Point{{0, 2}, {60, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gauge rollup = %v, want %v", got, want)
	}
	// Amount metric (invocations): hourly sum.
	got = s.series(MetricInvocations, 119, 2, true, nil)
	want = []Point{{0, 120}, {60, 300}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("amount rollup = %v, want %v", got, want)
	}
	// A partial hour averages over the minutes actually folded in.
	pushMinute(s, 120, 9)
	pushMinute(s, 121, 11)
	got = s.series(MetricKaMActualMB, 121, 1, true, nil)
	if want = []Point{{120, 10}}; !reflect.DeepEqual(got, want) {
		t.Errorf("partial hour = %v, want %v", got, want)
	}
}

func TestStorePushDoesNotAllocate(t *testing.T) {
	s := newStore(64)
	m := 0
	if avg := testing.AllocsPerRun(500, func() {
		pushMinute(s, m, 1)
		m++
	}); avg != 0 {
		t.Errorf("push allocates %v times, want 0", avg)
	}
}

func TestParseMetricRoundTrip(t *testing.T) {
	names := MetricNames()
	if len(names) != int(numMetrics) {
		t.Fatalf("MetricNames returned %d names, want %d", len(names), numMetrics)
	}
	for i, n := range names {
		m, err := ParseMetric(n)
		if err != nil {
			t.Errorf("ParseMetric(%q): %v", n, err)
		}
		if m != Metric(i) || m.String() != n {
			t.Errorf("round trip %q -> %v -> %q", n, m, m.String())
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("ParseMetric accepted unknown name")
	}
	if got := Metric(-1).String(); got != "metric(-1)" {
		t.Errorf("out-of-range String = %q", got)
	}
}
