// Package attribution answers, online, the question the paper answers
// offline: how much is PULSE saving right now, and for which functions?
//
// An Accountant is a telemetry.Observer that watches the same sample
// stream the metrics pipeline sees — keep-alive decisions, invocations,
// minute rollups — and runs lightweight *shadow policies* in-stream
// against the identical invocation feed. Three baselines are always
// raced:
//
//   - fixed-high: the OpenWhisk/AWS-style fixed keep-alive of the
//     highest-quality variant for Config.Window minutes after every
//     invocation — the paper's competing baseline;
//   - never: no keep-alive at all — every invoked minute opens with a
//     cold start on the highest-quality variant;
//   - oracle: the paper's "ideal" reference (Figure 6b) — a container of
//     the highest-quality variant is alive exactly during the minutes the
//     function is invoked, so every invocation is warm and no idle minute
//     is ever paid for.
//
// Since the tournament refactor the Accountant is a thin adapter over a
// tournament.Arena: the three baselines are tournament.ShadowEntrant
// implementations (entrants 0..2), and Config.Entrants appends further
// contenders — MPC, Hawkes, Q-learning, or anything satisfying the
// interface — raced by the same referee with per-entrant per-function
// ledgers. The shadows never run containers; they are pure accounting
// derived from the observed invocation counts, with semantics matched
// line-for-line to the cluster engine's (an invocation at minute m keeps
// the fixed baseline's container alive through minute m+window; the first
// cold invocation of a minute pays the cold start and leaves the
// container warm for the rest of the minute). Per function and
// cluster-wide, the Accountant tracks keep-alive MB-minutes, cold starts,
// delivered accuracy (both invocation-weighted and variant-minutes
// weighted), and the net savings of the live policy versus each baseline,
// plus a fixed-capacity windowed time-series of per-minute aggregates.
//
// Determinism: the Accountant's state is a pure function of the sample
// stream. Attribution therefore stays on the coordinator — the sharded
// controller stages its events in per-shard telemetry.Buffers and flushes
// them at the minute barrier in shard order, and the cluster engine falls
// back to its serial scan whenever an Observer is attached — so reports
// are bit-identical at every shard count, and a simulated run and a live
// runtime fed the same trace produce identical numbers by construction.
// All hot-path state is preallocated: once constructed, observing a minute
// allocates nothing.
package attribution

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/tournament"
)

// Baseline names as they appear in reports. Every Accountant's arena
// carries these as entrants 0, 1, and 2; Config.Entrants follow.
const (
	BaselineFixedHigh = "fixed-high"
	BaselineNever     = "never"
	BaselineOracle    = "oracle"
)

// Config parameterizes an Accountant.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment
	// Cost prices keep-alive memory for the live policy and every shadow;
	// the zero value selects the AWS-calibrated default.
	Cost cluster.CostModel
	// Window is the fixed-high shadow's keep-alive period in minutes
	// (default cluster.DefaultKeepAliveWindow).
	Window int
	// SeriesWindow is how many minutes the time-series store retains at
	// minute resolution (default DefaultSeriesWindow). The hourly rollup
	// ring holds the same number of buckets, extending the horizon 60×.
	SeriesWindow int
	// Entrants are additional tournament contenders raced alongside the
	// three baselines (see tournament.Roster for the packaged ones). Names
	// must be unique and must not collide with the baseline names.
	Entrants []tournament.ShadowEntrant
}

// Accountant is the online counterfactual attribution engine. It
// implements telemetry.Observer; attach one instance to both the
// controller (core.Config.Observer) and the platform (cluster.Config /
// runtime.Config Observer), alongside any other observer via
// telemetry.Multi.
type Accountant struct {
	arena  *tournament.Arena
	window int
}

// New builds an Accountant. The catalog and assignment must match the ones
// driving the policy under observation.
func New(cfg Config) (*Accountant, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("attribution: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("attribution: empty assignment")
	}
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	if cfg.Cost.USDPerGBSecond < 0 {
		return nil, fmt.Errorf("attribution: negative cost rate %v", cfg.Cost.USDPerGBSecond)
	}
	if cfg.Window <= 0 {
		cfg.Window = cluster.DefaultKeepAliveWindow
	}
	entrants := make([]tournament.ShadowEntrant, 0, 3+len(cfg.Entrants))
	entrants = append(entrants,
		tournament.NewFixedWindow(BaselineFixedHigh, cfg.Window),
		tournament.NewNever(BaselineNever),
		tournament.NewOracle(BaselineOracle),
	)
	entrants = append(entrants, cfg.Entrants...)
	arena, err := tournament.New(tournament.Config{
		Catalog:      cfg.Catalog,
		Assignment:   cfg.Assignment,
		Cost:         cfg.Cost,
		SeriesWindow: cfg.SeriesWindow,
		Entrants:     entrants,
	})
	if err != nil {
		return nil, err
	}
	return &Accountant{arena: arena, window: cfg.Window}, nil
}

// Window returns the fixed-high shadow's keep-alive window in minutes.
func (a *Accountant) Window() int { return a.window }

// Arena exposes the underlying tournament arena: per-entrant snapshots,
// entrant-selected time-series, and the memory-retention probes live
// there.
func (a *Accountant) Arena() *tournament.Arena { return a.arena }

// EntrantNames lists every raced policy in report order: the three
// baselines, then Config.Entrants.
func (a *Accountant) EntrantNames() []string { return a.arena.EntrantNames() }

// MetricAt returns one cluster-wide metric's value at a single minute:
// the stored value for a closed minute still inside the series window, or
// the live accumulators when the minute is the currently open one — what
// the store would receive if the minute ended now. The open-minute path is
// what lets an alert engine flushing its final minute price it without
// waiting for a rollup that will never come. Reports false for minutes
// never seen or already evicted from the ring.
func (a *Accountant) MetricAt(metric Metric, minute int) (float64, bool) {
	sel, ok := metricSelector(metric)
	if !ok {
		return 0, false
	}
	return a.arena.ValueAt(sel, minute)
}

// Series returns the trailing time-series for one metric, oldest point
// first: the last window minutes at minute resolution, or — with hourly
// set — the last window hours from the rollup ring (gauges averaged,
// amounts summed; Point.Minute is the hour's first minute). The open
// minute is not included; it is still accumulating.
func (a *Accountant) Series(metric Metric, window int, hourly bool) []Point {
	sel, ok := metricSelector(metric)
	if !ok {
		return nil
	}
	return a.arena.Series(sel, window, hourly)
}

// ObserveKeepAlive implements telemetry.Observer: the live policy's
// keep-alive decision for one function-minute.
func (a *Accountant) ObserveKeepAlive(s telemetry.KeepAliveSample) { a.arena.ObserveKeepAlive(s) }

// ObserveInvocation implements telemetry.Observer: one batch of served
// invocations.
func (a *Accountant) ObserveInvocation(s telemetry.InvocationSample) { a.arena.ObserveInvocation(s) }

// ObserveMinute implements telemetry.Observer. The rollup's payload is
// recomputed internally (so simulated and live feeds, which price the
// minute in different float orders, cannot diverge); the sample only
// advances the clock.
func (a *Accountant) ObserveMinute(s telemetry.MinuteSample) { a.arena.ObserveMinute(s) }

// ObserveSchedule implements telemetry.Observer (ignored: plans are
// intent, not cost).
func (a *Accountant) ObserveSchedule(telemetry.ScheduleSample) {}

// ObservePeak implements telemetry.Observer (ignored: peak episodes are
// visible through the downgrade counts they cause).
func (a *Accountant) ObservePeak(telemetry.PeakSample) {}

// ObserveDowngrade implements telemetry.Observer: counts Algorithm 2
// downgrades per function, the /top "downgrades" ranking.
func (a *Accountant) ObserveDowngrade(s telemetry.DowngradeSample) { a.arena.ObserveDowngrade(s) }

// ObserveRegister implements telemetry.LifecycleObserver: a new function
// slot opens a fresh ledger in every account.
func (a *Accountant) ObserveRegister(s telemetry.RegisterSample) { a.arena.ObserveRegister(s) }

// ObserveDeregister implements telemetry.LifecycleObserver: the slot's
// ledgers are folded into fixed-size retired sums and released.
func (a *Accountant) ObserveDeregister(s telemetry.DeregisterSample) { a.arena.ObserveDeregister(s) }

var (
	_ telemetry.Observer          = (*Accountant)(nil)
	_ telemetry.LifecycleObserver = (*Accountant)(nil)
)
