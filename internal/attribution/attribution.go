// Package attribution answers, online, the question the paper answers
// offline: how much is PULSE saving right now, and for which functions?
//
// An Accountant is a telemetry.Observer that watches the same sample
// stream the metrics pipeline sees — keep-alive decisions, invocations,
// minute rollups — and runs three lightweight *shadow policies* in-stream
// against the identical invocation feed:
//
//   - fixed-high: the OpenWhisk/AWS-style fixed keep-alive of the
//     highest-quality variant for Config.Window minutes after every
//     invocation — the paper's competing baseline;
//   - never: no keep-alive at all — every invoked minute opens with a
//     cold start on the highest-quality variant;
//   - oracle: the paper's "ideal" reference (Figure 6b) — a container of
//     the highest-quality variant is alive exactly during the minutes the
//     function is invoked, so every invocation is warm and no idle minute
//     is ever paid for.
//
// The shadows never run containers; they are pure accounting derived from
// the observed invocation counts, with semantics matched line-for-line to
// the cluster engine's (an invocation at minute m keeps the fixed
// baseline's container alive through minute m+window; the first cold
// invocation of a minute pays the cold start and leaves the container warm
// for the rest of the minute). Per function and cluster-wide, the
// Accountant tracks keep-alive MB-minutes, cold starts, delivered accuracy
// (both invocation-weighted and variant-minutes weighted), and the net
// savings of the live policy versus each baseline, plus a fixed-capacity
// windowed time-series of per-minute aggregates.
//
// Determinism: the Accountant's state is a pure function of the sample
// stream. Attribution therefore stays on the coordinator — the sharded
// controller stages its events in per-shard telemetry.Buffers and flushes
// them at the minute barrier in shard order, and the cluster engine falls
// back to its serial scan whenever an Observer is attached — so reports
// are bit-identical at every shard count, and a simulated run and a live
// runtime fed the same trace produce identical numbers by construction.
// All hot-path state is preallocated: once constructed, observing a minute
// allocates nothing.
package attribution

import (
	"fmt"
	"sync"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// Baseline names as they appear in reports.
const (
	BaselineFixedHigh = "fixed-high"
	BaselineNever     = "never"
	BaselineOracle    = "oracle"
)

// Config parameterizes an Accountant.
type Config struct {
	Catalog    *models.Catalog
	Assignment models.Assignment
	// Cost prices keep-alive memory for the live policy and every shadow;
	// the zero value selects the AWS-calibrated default.
	Cost cluster.CostModel
	// Window is the fixed-high shadow's keep-alive period in minutes
	// (default cluster.DefaultKeepAliveWindow).
	Window int
	// SeriesWindow is how many minutes the time-series store retains at
	// minute resolution (default DefaultSeriesWindow). The hourly rollup
	// ring holds the same number of buckets, extending the horizon 60×.
	SeriesWindow int
}

// famInfo caches the per-variant characteristics of one model family in
// the form the hot path needs: no catalog traversal per sample.
type famInfo struct {
	name       string
	byName     map[string]int
	memMB      []float64
	accPct     []float64
	costPerMin []float64
	highest    int
}

// fnState is one function's attribution state: shadow bookkeeping plus the
// integer counters everything in a Report is derived from. Keeping counts
// (minutes per variant, invocations per variant) rather than running float
// sums makes reports independent of how the feed fragments a minute's
// invocations into samples — the engine batches warm invocations, the live
// runtime emits one sample each, and both must account identically.
type fnState struct {
	lastInv    int  // minute of the last invocation, -1 before any
	seenMinute int  // minute of the last invocation sample, -1 before any
	fixedAlive bool // fixed-high shadow keeps this function alive in the open minute
	retired    bool // slot deregistered; ledger closed, counters frozen

	invocations   int
	actualCold    int
	fixedCold     int
	neverCold     int
	invokedMin    int   // minutes with ≥1 invocation (= oracle keep-alive minutes)
	fixedAliveMin int   // minutes the fixed-high shadow kept alive
	aliveMin      []int // actual kept-alive minutes, by variant index (nil once retired)
	invByVariant  []int // actual invocations, by variant index (nil once retired)
	downgrades    int

	// Folded per-variant sums, computed once at retirement — in the same
	// variant order functionReport uses, so reports stay bit-identical —
	// after which aliveMin and invByVariant are released. This is what
	// bounds a churning accountant's steady-state heap: a departed slot
	// keeps only this fixed-size struct, not its per-variant ledgers.
	foldedKaMBMin float64 // Σ aliveMin[v] × memMB[v]
	foldedKaCost  float64 // Σ aliveMin[v] × costPerMin[v]
	foldedAccMin  float64 // Σ aliveMin[v] × accPct[v]
	foldedAccSum  float64 // Σ invByVariant[v] × accPct[v]
}

// Accountant is the online counterfactual attribution engine. It
// implements telemetry.Observer; attach one instance to both the
// controller (core.Config.Observer) and the platform (cluster.Config /
// runtime.Config Observer), alongside any other observer via
// telemetry.Multi.
type Accountant struct {
	mu     sync.Mutex
	cost   cluster.CostModel
	window int

	fams  []famInfo
	famOf []int
	fns   []fnState

	cur   int // open minute, -1 before the first sample
	store *store

	// Open-minute cluster-wide accumulators, written into the store when
	// the minute closes. Accumulation happens in function order (the
	// sample emission order), so the series is deterministic too.
	minActualKaM, minActualCost float64
	minFixedKaM, minFixedCost   float64
	minOracleKaM, minOracleCost float64
	minActualCold, minFixedCold int
	minNeverCold, minInv        int
}

// New builds an Accountant. The catalog and assignment must match the ones
// driving the policy under observation.
func New(cfg Config) (*Accountant, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("attribution: nil catalog")
	}
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Assignment.Validate(cfg.Catalog, len(cfg.Assignment)); err != nil {
		return nil, err
	}
	if len(cfg.Assignment) == 0 {
		return nil, fmt.Errorf("attribution: empty assignment")
	}
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	if cfg.Cost.USDPerGBSecond < 0 {
		return nil, fmt.Errorf("attribution: negative cost rate %v", cfg.Cost.USDPerGBSecond)
	}
	if cfg.Window <= 0 {
		cfg.Window = cluster.DefaultKeepAliveWindow
	}
	if cfg.SeriesWindow <= 0 {
		cfg.SeriesWindow = DefaultSeriesWindow
	}
	a := &Accountant{
		cost:   cfg.Cost,
		window: cfg.Window,
		fams:   make([]famInfo, len(cfg.Catalog.Families)),
		famOf:  make([]int, len(cfg.Assignment)),
		fns:    make([]fnState, len(cfg.Assignment)),
		cur:    -1,
		store:  newStore(cfg.SeriesWindow),
	}
	for i := range cfg.Catalog.Families {
		fam := &cfg.Catalog.Families[i]
		fi := famInfo{
			name:       fam.Name,
			byName:     make(map[string]int, fam.NumVariants()),
			memMB:      make([]float64, fam.NumVariants()),
			accPct:     make([]float64, fam.NumVariants()),
			costPerMin: make([]float64, fam.NumVariants()),
			highest:    fam.NumVariants() - 1,
		}
		for vi, v := range fam.Variants {
			fi.byName[v.Name] = vi
			fi.memMB[vi] = v.MemoryMB
			fi.accPct[vi] = v.AccuracyPct
			fi.costPerMin[vi] = cfg.Cost.KeepAliveUSDPerMinute(v.MemoryMB)
		}
		a.fams[i] = fi
	}
	for fn := range cfg.Assignment {
		a.famOf[fn] = cfg.Assignment[fn]
		nv := cfg.Catalog.Families[cfg.Assignment[fn]].NumVariants()
		a.fns[fn] = fnState{
			lastInv:      -1,
			seenMinute:   -1,
			aliveMin:     make([]int, nv),
			invByVariant: make([]int, nv),
		}
	}
	return a, nil
}

// Window returns the fixed-high shadow's keep-alive window in minutes.
func (a *Accountant) Window() int { return a.window }

// roll advances the open minute to m, closing every minute in between.
// Minutes only move forward; a sample carrying an older minute (possible
// under live concurrent traffic, where an invocation's sample can be
// emitted after the tick advanced) is folded into the open minute.
func (a *Accountant) roll(m int) {
	if a.cur < 0 {
		if m < 0 {
			m = 0
		}
		a.open(m)
		return
	}
	for a.cur < m {
		a.close()
		a.open(a.cur + 1)
	}
}

// open starts minute m: the fixed-high shadow charges keep-alive for every
// function whose window is still open. Runs in function order.
func (a *Accountant) open(m int) {
	a.cur = m
	for fn := range a.fns {
		f := &a.fns[fn]
		alive := !f.retired && f.lastInv >= 0 && m <= f.lastInv+a.window
		f.fixedAlive = alive
		if alive {
			f.fixedAliveMin++
			fi := &a.fams[a.famOf[fn]]
			a.minFixedKaM += fi.memMB[fi.highest]
			a.minFixedCost += fi.costPerMin[fi.highest]
		}
	}
}

// openValues snapshots the open minute's cluster-wide accumulators in
// store layout — the values close() will push when the minute ends.
func (a *Accountant) openValues() [numMetrics]float64 {
	var v [numMetrics]float64
	v[MetricKaMActualMB] = a.minActualKaM
	v[MetricKaMFixedMB] = a.minFixedKaM
	v[MetricKaMOracleMB] = a.minOracleKaM
	v[MetricCostActualUSD] = a.minActualCost
	v[MetricCostFixedUSD] = a.minFixedCost
	v[MetricCostOracleUSD] = a.minOracleCost
	v[MetricSavingsVsFixedUSD] = a.minFixedCost - a.minActualCost
	v[MetricColdActual] = float64(a.minActualCold)
	v[MetricColdFixed] = float64(a.minFixedCold)
	v[MetricColdNever] = float64(a.minNeverCold)
	v[MetricInvocations] = float64(a.minInv)
	return v
}

// close finalizes the open minute into the time-series store and resets
// the per-minute accumulators.
func (a *Accountant) close() {
	a.store.push(a.cur, a.openValues())
	a.minActualKaM, a.minActualCost = 0, 0
	a.minFixedKaM, a.minFixedCost = 0, 0
	a.minOracleKaM, a.minOracleCost = 0, 0
	a.minActualCold, a.minFixedCold = 0, 0
	a.minNeverCold, a.minInv = 0, 0
}

// MetricAt returns one cluster-wide metric's value at a single minute:
// the stored value for a closed minute still inside the series window, or
// the live accumulators when the minute is the currently open one — what
// close() would push if the minute ended now. The open-minute path is what
// lets an alert engine flushing its final minute price it without waiting
// for a rollup that will never come. Reports false for minutes never seen
// or already evicted from the ring.
func (a *Accountant) MetricAt(metric Metric, minute int) (float64, bool) {
	if metric < 0 || metric >= numMetrics || minute < 0 {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if minute == a.cur {
		return a.openValues()[metric], true
	}
	return a.store.at(metric, minute)
}

// ObserveKeepAlive implements telemetry.Observer: the live policy's
// keep-alive decision for one function-minute.
func (a *Accountant) ObserveKeepAlive(s telemetry.KeepAliveSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(s.Minute)
	if s.Function < 0 || s.Function >= len(a.fns) || a.fns[s.Function].retired {
		// Retired slots are pinned to NoVariant by every well-formed feed;
		// a contrary sample is foreign and is dropped (the ledger is gone).
		return
	}
	fi := &a.fams[a.famOf[s.Function]]
	if s.Variant < 0 || s.Variant >= len(fi.memMB) {
		return
	}
	a.fns[s.Function].aliveMin[s.Variant]++
	a.minActualKaM += fi.memMB[s.Variant]
	a.minActualCost += fi.costPerMin[s.Variant]
}

// ObserveInvocation implements telemetry.Observer: one batch of served
// invocations. The shadows derive their warm/cold attribution here; the
// first sample of a function-minute marks the minute invoked (the cold
// start slot for shadows that are cold, the oracle's keep-alive charge).
func (a *Accountant) ObserveInvocation(s telemetry.InvocationSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(s.Minute)
	if s.Function < 0 || s.Function >= len(a.fns) || a.fns[s.Function].retired {
		// A retired function cannot be invoked; a contrary sample is a
		// foreign feed and is dropped (the per-variant ledger is gone).
		return
	}
	n := s.Count
	if n <= 0 {
		n = 1
	}
	f := &a.fns[s.Function]
	fi := &a.fams[a.famOf[s.Function]]
	first := f.seenMinute != s.Minute
	if first {
		if s.Minute > f.seenMinute {
			f.seenMinute = s.Minute
		}
		f.invokedMin++
		a.minOracleKaM += fi.memMB[fi.highest]
		a.minOracleCost += fi.costPerMin[fi.highest]
	}
	f.invocations += n
	a.minInv += n
	vi, ok := fi.byName[s.Variant]
	if !ok {
		// A variant name outside the catalog (foreign feed); attribute to
		// the highest variant rather than dropping the invocations.
		vi = fi.highest
	}
	f.invByVariant[vi] += n
	if s.Cold {
		f.actualCold += n
		a.minActualCold += n
	}
	if first && !f.fixedAlive {
		f.fixedCold++
		a.minFixedCold++
	}
	if first {
		f.neverCold++
		a.minNeverCold++
	}
	if s.Minute > f.lastInv {
		f.lastInv = s.Minute
	}
}

// ObserveMinute implements telemetry.Observer. The rollup's payload is
// recomputed internally (so simulated and live feeds, which price the
// minute in different float orders, cannot diverge); the sample only
// advances the clock.
func (a *Accountant) ObserveMinute(s telemetry.MinuteSample) {
	a.mu.Lock()
	a.roll(s.Minute)
	a.mu.Unlock()
}

// ObserveSchedule implements telemetry.Observer (ignored: plans are
// intent, not cost).
func (a *Accountant) ObserveSchedule(telemetry.ScheduleSample) {}

// ObservePeak implements telemetry.Observer (ignored: peak episodes are
// visible through the downgrade counts they cause).
func (a *Accountant) ObservePeak(telemetry.PeakSample) {}

// ObserveDowngrade implements telemetry.Observer: counts Algorithm 2
// downgrades per function, the /top "downgrades" ranking.
func (a *Accountant) ObserveDowngrade(s telemetry.DowngradeSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(s.Minute)
	if s.Function >= 0 && s.Function < len(a.fns) {
		a.fns[s.Function].downgrades++
	}
}

// ObserveRegister implements telemetry.LifecycleObserver: a new function
// slot opens a fresh ledger. The sample must carry the next dense slot
// index (lifecycle events are emitted in slot order by both the cluster
// engine and the live runtime); anything else is a foreign feed and is
// dropped rather than corrupting the ledgers.
func (a *Accountant) ObserveRegister(s telemetry.RegisterSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.Family < 0 || s.Family >= len(a.fams) || s.Function != len(a.fns) {
		return
	}
	a.roll(s.Minute)
	nv := len(a.fams[s.Family].memMB)
	a.famOf = append(a.famOf, s.Family)
	a.fns = append(a.fns, fnState{
		lastInv:      -1,
		seenMinute:   -1,
		aliveMin:     make([]int, nv),
		invByVariant: make([]int, nv),
	})
}

// ObserveDeregister implements telemetry.LifecycleObserver: the slot's
// ledger is closed — its counters stay in the report, but the fixed-high
// shadow stops charging from the sample's minute on (a deleted function
// would not have been kept alive by any baseline either). Retirement is
// applied before the clock advances so the minute the sample names is the
// first one the shadow skips. The per-variant ledgers are folded into the
// fixed-size retired sums and released: a retired slot cannot accumulate
// further kept-alive minutes or invocations (the policy pins it to
// NoVariant and the platform refuses to serve it), so the fold is final.
func (a *Accountant) ObserveDeregister(s telemetry.DeregisterSample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.Function < 0 || s.Function >= len(a.fns) {
		return
	}
	f := &a.fns[s.Function]
	if !f.retired {
		f.retired = true
		fi := &a.fams[a.famOf[s.Function]]
		for v := 0; v < len(fi.memMB); v++ {
			m := float64(f.aliveMin[v])
			f.foldedKaMBMin += m * fi.memMB[v]
			f.foldedKaCost += m * fi.costPerMin[v]
			f.foldedAccMin += m * fi.accPct[v]
			f.foldedAccSum += float64(f.invByVariant[v]) * fi.accPct[v]
		}
		f.aliveMin, f.invByVariant = nil, nil
	}
	f.fixedAlive = false
	a.roll(s.Minute)
}

var (
	_ telemetry.Observer          = (*Accountant)(nil)
	_ telemetry.LifecycleObserver = (*Accountant)(nil)
)
