package attribution

// Deregistration folding: retiring a function folds its per-variant
// ledgers into four fixed-size sums — in the same variant order the report
// path uses, so the folded report is bit-identical to the live one — and
// then drops the ledger slices, leaving the retired slot a constant-size
// tombstone no matter how many variants its family had.

import (
	"reflect"
	"testing"

	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

func TestDeregisterFoldPreservesReport(t *testing.T) {
	cat := testCatalog(t)
	asg := uniform(cat, 4)
	acct := newAccountant(t, Config{Catalog: cat, Assignment: asg, Cost: cluster.DefaultCostModel()})

	for m := 0; m < 12; m++ {
		for fn := 0; fn < 4; fn++ {
			fam := cat.Families[asg[fn]]
			acct.ObserveKeepAlive(telemetry.KeepAliveSample{
				Minute: m, Function: fn, Variant: (fn + m) % len(fam.Variants),
			})
			if (fn+m)%3 != 0 {
				acct.ObserveInvocation(telemetry.InvocationSample{
					Minute: m, Function: fn,
					Variant: fam.Variants[m%len(fam.Variants)].Name,
					Cold:    m == 0, Count: 1 + fn,
				})
			}
		}
		acct.ObserveMinute(telemetry.MinuteSample{Minute: m})
	}

	before := acct.Report()
	acct.ObserveDeregister(telemetry.DeregisterSample{Minute: 11, Function: 1})
	after := acct.Report()
	if !reflect.DeepEqual(before.Functions[1], after.Functions[1]) {
		t.Errorf("folding changed the retired function's report:\nbefore %+v\nafter  %+v",
			before.Functions[1], after.Functions[1])
	}
	if !reflect.DeepEqual(before.Total, after.Total) {
		t.Errorf("folding changed the total report")
	}
	if !acct.Arena().LedgersReleased(1) {
		t.Error("retired slot still holds per-variant ledgers")
	}

	// A second deregister sample for the same slot must be a no-op, and
	// foreign-feed samples for the retired slot must be dropped, not
	// attributed or crash on the released ledgers.
	acct.ObserveDeregister(telemetry.DeregisterSample{Minute: 11, Function: 1})
	acct.ObserveKeepAlive(telemetry.KeepAliveSample{Minute: 11, Function: 1, Variant: 0})
	acct.ObserveInvocation(telemetry.InvocationSample{
		Minute: 11, Function: 1, Variant: cat.Families[asg[1]].Variants[0].Name, Count: 3,
	})
	again := acct.Report()
	if !reflect.DeepEqual(after.Functions[1], again.Functions[1]) {
		t.Error("post-retirement samples changed the retired function's account")
	}
}
