package pulse_test

// Golden regression test: a small seeded workload is pinned to the exact
// numbers committed in testdata/golden.json, so any change to the
// controller's decision semantics — however subtle — fails loudly instead
// of drifting. Regenerate deliberately after an intended semantic change:
//
//	go test . -run TestGoldenResult -update-golden
//
// Floats are compared with a tiny relative tolerance so the pins survive
// architectures with different FMA contraction, while still catching any
// real semantic drift.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current implementation")

// goldenResult is the pinned digest of the reference run.
type goldenResult struct {
	Seed             int64   `json:"seed"`
	HorizonMinutes   int     `json:"horizon_minutes"`
	Functions        int     `json:"functions"`
	Policy           string  `json:"policy"`
	KeepAliveCostUSD float64 `json:"keep_alive_cost_usd"`
	WarmStarts       int     `json:"warm_starts"`
	ColdStarts       int     `json:"cold_starts"`
	Invocations      int     `json:"invocations"`
	TotalServiceSec  float64 `json:"total_service_sec"`
	AccuracySumPct   float64 `json:"accuracy_sum_pct"`
	Downgrades       int     `json:"downgrades"`
	PeakMinutes      int     `json:"peak_minutes"`
	KaMSumMB         float64 `json:"kam_sum_mb"`
	KaMPeakMB        float64 `json:"kam_peak_mb"`
	// Counterfactual attribution aggregates: net keep-alive savings versus
	// the fixed-10-min high-quality shadow baseline, and the cold-start
	// ledger on both sides of that comparison.
	SavingsVsFixedUSD  float64 `json:"savings_vs_fixed_usd"`
	FixedColdStarts    int     `json:"fixed_cold_starts"`
	ColdAvoidedVsFixed int     `json:"cold_avoided_vs_fixed"`
}

func goldenRun(t *testing.T, shards int) (*pulse.SimulationResult, *pulse.Pulse, *pulse.Trace, *pulse.Accountant) {
	t.Helper()
	const seed, horizon = 42, trace.MinutesPerDay
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: seed, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))
	acct, err := pulse.NewAccountant(pulse.AttributionConfig{Catalog: cat, Assignment: asg})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	res, err := pulse.Simulate(pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg, Observer: acct}, p)
	if err != nil {
		t.Fatal(err)
	}
	return res, p, tr, acct
}

func digest(res *pulse.SimulationResult, p *pulse.Pulse, tr *pulse.Trace, acct *pulse.Accountant) goldenResult {
	g := goldenResult{
		Seed:             42,
		HorizonMinutes:   tr.Horizon,
		Functions:        len(tr.Functions),
		Policy:           p.Name(),
		KeepAliveCostUSD: res.KeepAliveCostUSD,
		WarmStarts:       res.WarmStarts,
		ColdStarts:       res.ColdStarts,
		Invocations:      res.Invocations,
		TotalServiceSec:  res.TotalServiceSec,
		AccuracySumPct:   res.AccuracySumPct,
		Downgrades:       p.TotalDowngrades(),
		PeakMinutes:      p.PeakMinutes(),
	}
	for _, v := range res.PerMinuteKaMMB {
		g.KaMSumMB += v
		if v > g.KaMPeakMB {
			g.KaMPeakMB = v
		}
	}
	rep := acct.Report()
	g.SavingsVsFixedUSD = rep.Total.VsFixed.KeepAliveCostUSD
	g.FixedColdStarts = rep.Total.FixedHigh.ColdStarts
	g.ColdAvoidedVsFixed = rep.Total.VsFixed.ColdStartsAvoided
	return g
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestGoldenResult(t *testing.T) {
	res, p, tr, acct := goldenRun(t, 1)
	got := digest(res, p, tr, acct)
	path := filepath.Join("testdata", "golden.json")

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want goldenResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	if got.Policy != want.Policy || got.Functions != want.Functions || got.HorizonMinutes != want.HorizonMinutes {
		t.Fatalf("run shape changed: got %s/%d fns/%d min, want %s/%d/%d",
			got.Policy, got.Functions, got.HorizonMinutes, want.Policy, want.Functions, want.HorizonMinutes)
	}
	if got.WarmStarts != want.WarmStarts || got.ColdStarts != want.ColdStarts || got.Invocations != want.Invocations {
		t.Errorf("starts: got %d warm / %d cold / %d total, want %d / %d / %d",
			got.WarmStarts, got.ColdStarts, got.Invocations, want.WarmStarts, want.ColdStarts, want.Invocations)
	}
	if got.Downgrades != want.Downgrades {
		t.Errorf("downgrades: got %d, want %d", got.Downgrades, want.Downgrades)
	}
	if got.PeakMinutes != want.PeakMinutes {
		t.Errorf("peak minutes: got %d, want %d", got.PeakMinutes, want.PeakMinutes)
	}
	if got.FixedColdStarts != want.FixedColdStarts || got.ColdAvoidedVsFixed != want.ColdAvoidedVsFixed {
		t.Errorf("attribution colds: got %d fixed / %d avoided, want %d / %d",
			got.FixedColdStarts, got.ColdAvoidedVsFixed, want.FixedColdStarts, want.ColdAvoidedVsFixed)
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"keep-alive cost USD", got.KeepAliveCostUSD, want.KeepAliveCostUSD},
		{"total service sec", got.TotalServiceSec, want.TotalServiceSec},
		{"accuracy sum pct", got.AccuracySumPct, want.AccuracySumPct},
		{"KaM sum MB", got.KaMSumMB, want.KaMSumMB},
		{"KaM peak MB", got.KaMPeakMB, want.KaMPeakMB},
		{"savings vs fixed USD", got.SavingsVsFixedUSD, want.SavingsVsFixedUSD},
	} {
		if !floatClose(f.got, f.want) {
			t.Errorf("%s: got %.12g, want %.12g", f.name, f.got, f.want)
		}
	}
}

// TestGoldenResultSharded pins the sharded controller to the same golden
// numbers: the default shard count (one per CPU) must reproduce the
// committed serial digest exactly.
func TestGoldenResultSharded(t *testing.T) {
	res, p, tr, acct := goldenRun(t, 0)
	got := digest(res, p, tr, acct)
	serialRes, serialP, serialTr, serialAcct := goldenRun(t, 1)
	want := digest(serialRes, serialP, serialTr, serialAcct)
	want.Policy = got.Policy // same by construction; compare the numbers
	if got != want {
		t.Errorf("sharded digest diverges from serial:\n got %+v\nwant %+v", got, want)
	}
}
