# PULSE reproduction — developer targets. Everything is stdlib Go; the only
# prerequisite is a Go ≥ 1.22 toolchain.

GO ?= go

.PHONY: all build vet test test-parallel race stress bench bench-runtime bench-matrix bench-scale bench-scale-full bench-tournament experiments report examples clean verify alloc lint e2e

all: build vet test

# Everything CI's test job checks, in one target.
verify: build vet test

# Zero-allocation assertions for the hot paths (controller idle minute —
# dense and arena-backed idle-skip, including the million-slot pin —
# sparse runtime Step, telemetry buffers/fan-out, attribution accountant
# and ring store). Mirrors the CI "alloc" job.
alloc:
	$(GO) test ./... -run 'ZeroAllocs|DoesNotAllocate|NoAllocs|NoSteadyStateAllocs' -count=1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Staticcheck, pinned so local runs and the CI lint job agree on findings.
# `go run` fetches the tool on first use (needs network once; cached after).
STATICCHECK_VERSION ?= 2023.1.7
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Sharded-controller equivalence proof: the differential harness and every
# shard test under the race detector, plus short fuzz smoke runs over the
# optimizer invariants. Mirrors the CI "sharded" job.
test-parallel:
	$(GO) test -race ./... -run 'Differential|Sharded'
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzPeakDetector$$' -fuzztime=10s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzHistoryProbabilities$$' -fuzztime=10s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzSchedule$$' -fuzztime=10s
	$(GO) test ./internal/runtime -run '^$$' -fuzz '^FuzzInvokeStepSchedule$$' -fuzztime=10s

# Seqlock/epoch stress battery: the runtime package's concurrency tests
# (differential, torn-read, conservation, churn) repeated under the race
# detector at contrasting parallelism levels. Mirrors the CI "stress" job.
stress:
	GOMAXPROCS=1 $(GO) test -race -count=5 -timeout=25m ./internal/runtime
	GOMAXPROCS=4 $(GO) test -race -count=5 -timeout=25m ./internal/runtime

# Live ops smoke test: builds the pulsed binary, runs it with a compressed
# clock and a webhook sink, and drives an alert through fire and resolve.
# Mirrors the CI "e2e" job.
e2e:
	$(GO) test ./cmd/pulsed -run 'TestE2E' -count=1 -v

# Quick-scale benchmark pass over every table/figure harness.
bench:
	$(GO) test -bench=. -benchmem -run xxx .

# Live-runtime serving benchmark matrix: the load harness sweeps GOMAXPROCS
# × functions × mixes × modes (serial, striped, epoch) and writes the
# multi-point BENCH_runtime.json with per-cell throughput, latency
# percentiles, and per-shape speedup ratios. Mirrors the CI "bench-matrix"
# job, which uploads the JSON as an artifact. bench-runtime is kept as an
# alias for muscle memory.
bench-matrix:
	$(GO) run ./cmd/pulseload -gomaxprocs 1,4 -functions 12,96 -mixes hotspot,zipf -duration 2s -out BENCH_runtime.json

bench-runtime: bench-matrix

# Population-scale benchmark: the 100k-function cell with hard budgets on
# resting bytes per function and mean idle minute-step latency. Mirrors the
# CI "bench-scale" job, which uploads the JSON as an artifact. The full
# {10k, 100k, 1M} sweep published in BENCH_runtime.json comes from
# bench-scale-full (minutes, not seconds, at the 1M cell).
bench-scale:
	$(GO) run ./cmd/pulseload -scale-only -scale 100000 \
		-scale-max-bytes-per-fn 1024 -scale-max-idle-step-ms 1 \
		-out BENCH_scale.json

bench-scale-full:
	$(GO) run ./cmd/pulseload -scale-only -scale 10000,100000,1000000 -out BENCH_scale.json

# Tournament Observer-chain overhead: epoch mode benchmarked with the
# baseline accountant vs the full entrant roster (mpc, hawkes, qlearn)
# riding the attribution feed. The per-entrant throughput delta is checked
# against the advisory <3%/entrant guard and lands in the tournament_delta
# field of BENCH_tournament.json.
bench-tournament:
	$(GO) run ./cmd/pulseload -tournament-only -tournament-entrants mpc,hawkes,qlearn \
		-duration 2s -out BENCH_tournament.json

# Full experiment suite at paper-like scale (hours on a small machine).
experiments:
	$(GO) run ./cmd/experiments -exp all -days 14 -runs 1000

# Regenerate EXPERIMENTS.md (paper-vs-measured) at a moderate scale.
report:
	$(GO) run ./cmd/experiments -report EXPERIMENTS.md -days 7 -runs 30

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/peaksmoothing
	$(GO) run ./examples/integration
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/checkpoint
	$(GO) run ./examples/churn

clean:
	$(GO) clean ./...
