module github.com/pulse-serverless/pulse

go 1.22
