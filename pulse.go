// Package pulse is the public API of the PULSE reproduction: a dynamic
// keep-alive controller for serverless ML inference that blends model
// quality variants within the standard 10-minute keep-alive window to cut
// keep-alive cost while preserving warm starts and accuracy, plus the full
// evaluation substrate the paper runs on — a minute-resolution serverless
// platform simulator, a synthetic Azure-like trace generator, the model
// catalog, the baseline policies (OpenWhisk fixed, Serverless-in-the-Wild,
// IceBreaker, MILP), and a multi-run experiment harness.
//
// Quick start:
//
//	tr, _ := pulse.GenerateTrace(pulse.TraceConfig{Seed: 1})
//	cat := pulse.Catalog()
//	asg := pulse.UniformAssignment(cat, len(tr.Functions))
//	p, _ := pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
//	res, _ := pulse.Simulate(pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}, p)
//	fmt.Println(res.KeepAliveCostUSD, res.MeanAccuracyPct())
//
// See examples/ for runnable programs and cmd/experiments for the
// table/figure reproduction harness.
package pulse

import (
	"fmt"

	"github.com/pulse-serverless/pulse/internal/attribution"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/milp"
	"github.com/pulse-serverless/pulse/internal/models"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/predict"
	"github.com/pulse-serverless/pulse/internal/sim"
	"github.com/pulse-serverless/pulse/internal/telemetry"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// Re-exported core types. The facade keeps downstream imports to a single
// package while the implementation lives in internal/ packages.
type (
	// Trace is a minute-resolution serverless workload.
	Trace = trace.Trace
	// TraceFunction is one function's invocation series.
	TraceFunction = trace.Function
	// TraceConfig parameterizes the synthetic trace generator.
	TraceConfig = trace.GeneratorConfig

	// ModelCatalog is the set of model families with quality variants.
	ModelCatalog = models.Catalog
	// ModelFamily is one model with its ordered variants.
	ModelFamily = models.Family
	// ModelVariant is one quality level of a family.
	ModelVariant = models.Variant
	// Assignment maps function index → family index.
	Assignment = models.Assignment

	// Policy is the keep-alive controller interface the simulator drives.
	Policy = cluster.Policy
	// SimulationResult aggregates one simulated run.
	SimulationResult = cluster.Result
	// CostModel prices keep-alive memory.
	CostModel = cluster.CostModel

	// Config parameterizes a PULSE policy instance.
	Config = core.Config
	// Pulse is the PULSE keep-alive policy.
	Pulse = core.Pulse
	// ThresholdTechnique maps invocation probability to variant index.
	ThresholdTechnique = core.ThresholdTechnique
	// TechniqueT1 divides [0,1] into N probability bands (paper default).
	TechniqueT1 = core.TechniqueT1
	// TechniqueT2 reserves the lowest variant for probability zero.
	TechniqueT2 = core.TechniqueT2

	// ExperimentConfig assembles a multi-run paired experiment.
	ExperimentConfig = sim.ExperimentConfig
	// NamedFactory constructs one policy per run.
	NamedFactory = sim.NamedFactory
	// Aggregate summarizes a policy across runs.
	Aggregate = sim.Aggregate
	// Improvement is the relative change versus a baseline.
	Improvement = sim.Improvement

	// Observer receives instrumentation samples from the platform and
	// policies.
	Observer = telemetry.Observer

	// AttributionConfig parameterizes a counterfactual accountant.
	AttributionConfig = attribution.Config
	// Accountant is the online counterfactual attribution engine: it
	// shadows the live policy with fixed-high, never-keep-alive, and
	// hindsight-oracle baselines and accounts per-function savings.
	Accountant = attribution.Accountant
	// AttributionReport is a per-function attribution snapshot.
	AttributionReport = attribution.Report
)

// DefaultKeepAliveWindow is the industry-standard fixed keep-alive period
// in minutes.
const DefaultKeepAliveWindow = cluster.DefaultKeepAliveWindow

// NoVariant marks "no container kept alive" in policy decisions.
const NoVariant = cluster.NoVariant

// GenerateTrace builds a synthetic Azure-like workload (12 functions over
// two weeks by default), seeded and reproducible.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// Catalog returns the paper's model catalog (Tables I and IV): GPT, BERT,
// YOLO, ResNet, and DenseNet with their quality variants.
func Catalog() *ModelCatalog { return models.PaperCatalog() }

// UniformAssignment assigns families to functions round-robin — a fixed,
// reproducible model-to-function mapping.
func UniformAssignment(cat *ModelCatalog, nFunctions int) Assignment {
	asg := make(Assignment, nFunctions)
	for i := range asg {
		asg[i] = i % len(cat.Families)
	}
	return asg
}

// DefaultCostModel returns the AWS-Lambda-calibrated keep-alive pricing.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// New builds a PULSE policy.
func New(cfg Config) (*Pulse, error) { return core.New(cfg) }

// NewAccountant builds a counterfactual attribution accountant. Attach it
// as the Observer of a simulation (or alongside other observers via
// MultiObserver) and read Report() when the run completes.
func NewAccountant(cfg AttributionConfig) (*Accountant, error) { return attribution.New(cfg) }

// MultiObserver fans samples out to every non-nil observer in order.
func MultiObserver(obs ...Observer) Observer { return telemetry.Multi(obs...) }

// SimulationConfig assembles a single simulation run.
type SimulationConfig struct {
	Trace      *Trace
	Catalog    *ModelCatalog
	Assignment Assignment
	// Cost defaults to DefaultCostModel when zero.
	Cost CostModel
	// MeasureOverhead samples wall-clock time in policy calls.
	MeasureOverhead bool
	// Observer, when non-nil, receives every instrumentation sample the
	// platform and policy emit (attach a Telemetry pipeline, an
	// attribution Accountant, or both via telemetry.Multi re-exported as
	// MultiObserver).
	Observer Observer
}

// Simulate runs one policy over one trace and returns its metrics.
func Simulate(cfg SimulationConfig, p Policy) (*SimulationResult, error) {
	if cfg.Cost.USDPerGBSecond == 0 {
		cfg.Cost = cluster.DefaultCostModel()
	}
	return cluster.Run(cluster.Config{
		Trace:           cfg.Trace,
		Catalog:         cfg.Catalog,
		Assignment:      cfg.Assignment,
		Cost:            cfg.Cost,
		MeasureOverhead: cfg.MeasureOverhead,
		Observer:        cfg.Observer,
	}, p)
}

// RunExperiment executes a paired multi-run experiment (the paper's
// 1000-run methodology) and returns per-policy aggregates in factory order.
func RunExperiment(cfg ExperimentConfig, factories []NamedFactory) ([]*Aggregate, error) {
	return sim.RunExperiment(cfg, factories)
}

// ImprovementOver computes relative improvements versus a baseline
// aggregate in the paper's reporting convention.
func ImprovementOver(baseline, x *Aggregate) (Improvement, error) {
	return sim.ImprovementOver(baseline, x)
}

// Baseline identifies one of the built-in comparison policies.
type Baseline int

// Built-in baselines.
const (
	// BaselineOpenWhisk is the fixed 10-minute all-high-quality policy.
	BaselineOpenWhisk Baseline = iota
	// BaselineAllLow is the fixed 10-minute all-low-quality policy.
	BaselineAllLow
	// BaselineWild is Serverless-in-the-Wild (hybrid histogram + ARIMA).
	BaselineWild
	// BaselineIceBreaker is the FFT-based warm-up strategy.
	BaselineIceBreaker
	// BaselineMILP is the exact utility-maximizing optimizer.
	BaselineMILP
	// BaselineHoltWinters is this repository's extension warm-up strategy
	// (triple exponential smoothing); not part of the paper's comparison.
	BaselineHoltWinters
)

// NewBaseline constructs one of the built-in comparison policies with its
// default configuration.
func NewBaseline(b Baseline, cat *ModelCatalog, asg Assignment) (Policy, error) {
	switch b {
	case BaselineOpenWhisk:
		return policy.NewFixed(cat, asg, DefaultKeepAliveWindow, policy.QualityHighest)
	case BaselineAllLow:
		return policy.NewFixed(cat, asg, DefaultKeepAliveWindow, policy.QualityLowest)
	case BaselineWild:
		w, err := predict.NewWild(len(asg), predict.DefaultWildConfig())
		if err != nil {
			return nil, err
		}
		return predict.NewStandalonePolicy(w, cat, asg)
	case BaselineIceBreaker:
		ib, err := predict.NewIceBreaker(len(asg), predict.DefaultIceBreakerConfig())
		if err != nil {
			return nil, err
		}
		return predict.NewStandalonePolicy(ib, cat, asg)
	case BaselineMILP:
		return milp.NewPolicy(milp.PolicyConfig{Catalog: cat, Assignment: asg})
	case BaselineHoltWinters:
		hw, err := predict.NewHoltWinters(len(asg), predict.DefaultHWConfig())
		if err != nil {
			return nil, err
		}
		return predict.NewStandalonePolicy(hw, cat, asg)
	default:
		return nil, fmt.Errorf("pulse: unknown baseline %d", b)
	}
}

// NewIntegrated builds a warm-up strategy with PULSE's variant selection
// and memory-peak flattening integrated — the paper's Figure 8
// configurations (Wild, IceBreaker) plus the Holt-Winters extension.
func NewIntegrated(b Baseline, cat *ModelCatalog, asg Assignment) (Policy, error) {
	var w predict.Warmer
	var err error
	switch b {
	case BaselineWild:
		w, err = predict.NewWild(len(asg), predict.DefaultWildConfig())
	case BaselineIceBreaker:
		w, err = predict.NewIceBreaker(len(asg), predict.DefaultIceBreakerConfig())
	case BaselineHoltWinters:
		w, err = predict.NewHoltWinters(len(asg), predict.DefaultHWConfig())
	default:
		return nil, fmt.Errorf("pulse: baseline %d cannot be integrated with PULSE", b)
	}
	if err != nil {
		return nil, err
	}
	return predict.NewIntegratedPolicy(w, cat, asg, predict.IntegratedConfig{})
}
