// Quickstart: simulate PULSE against the OpenWhisk fixed 10-minute
// keep-alive policy on a synthetic two-day workload and print the paper's
// three metrics side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pulse "github.com/pulse-serverless/pulse"
)

func main() {
	// 1. A workload: 12 serverless functions with diverse invocation
	//    patterns over two days, one ML model family assigned to each.
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 42, Horizon: 2 * 24 * 60})
	if err != nil {
		log.Fatal(err)
	}
	cat := pulse.Catalog() // GPT, BERT, YOLO, ResNet, DenseNet variants
	asg := pulse.UniformAssignment(cat, len(tr.Functions))

	// 2. The two policies.
	ow, err := pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, asg)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate both on the same trace.
	simCfg := pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}
	rOW, err := pulse.Simulate(simCfg, ow)
	if err != nil {
		log.Fatal(err)
	}
	rPulse, err := pulse.Simulate(simCfg, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %16s %14s %11s\n", "policy", "service time", "keep-alive cost", "accuracy", "warm rate")
	for _, r := range []*pulse.SimulationResult{rOW, rPulse} {
		fmt.Printf("%-22s %12.0f s %15.4f $ %12.2f %% %10.1f %%\n",
			r.Policy, r.TotalServiceSec, r.KeepAliveCostUSD, r.MeanAccuracyPct(), 100*r.WarmStartRate())
	}
	fmt.Printf("\nPULSE: %.1f%% keep-alive cost reduction, %.1f%% service-time reduction, %.2f%% accuracy drop\n",
		(1-rPulse.KeepAliveCostUSD/rOW.KeepAliveCostUSD)*100,
		(1-rPulse.TotalServiceSec/rOW.TotalServiceSec)*100,
		rOW.MeanAccuracyPct()-rPulse.MeanAccuracyPct())
}
