// Trace replay: a full round trip through the workload tooling — generate
// a two-week Azure-like trace, persist it to CSV, reload it, inspect the
// per-function inter-arrival structure the paper's Figures 1 and 2 are
// built on, and replay it under PULSE.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func main() {
	// Generate and round-trip through the CSV codec (stand-in for loading
	// a real production trace export).
	orig, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 1, Horizon: 14 * 24 * 60})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, orig); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized trace: %d bytes for %d invocations\n\n", buf.Len(), orig.TotalInvocations())
	tr, err := trace.ReadCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Inter-arrival structure (Figure 1's view).
	fmt.Println("per-function inter-arrival structure:")
	for _, s := range trace.SummarizeAll(tr) {
		fmt.Printf("  %-6s %-28s %6d invocations, mean gap %6.1f min, %5.1f%% within 10 min\n",
			s.Name, s.Archetype, s.Invocations, s.MeanInterArriv, s.WithinWindowPct)
	}

	// Temporal drift (Figure 2's view) for the drifting function.
	fn := tr.Functions[len(tr.Functions)-1]
	third := tr.Horizon / 3
	fmt.Printf("\ndrift within %s (%s):\n", fn.Name, fn.Archetype)
	for i, label := range []string{"first", "middle", "last"} {
		gaps := fn.InterArrivalsInRange(i*third, (i+1)*third)
		pct, coverage, err := trace.InterArrivalDistribution(gaps, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s third: %5.1f%% of gaps within window; per-offset %% =", label, coverage*100)
		for d := 1; d <= 10; d++ {
			fmt.Printf(" %4.1f", pct[d])
		}
		fmt.Println()
	}

	// Replay under PULSE and report the invocation peaks it managed.
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))
	p, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pulse.Simulate(pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay under PULSE: $%.4f keep-alive, %.2f%% accuracy, %.1f%% warm starts, %d peak minutes, %d downgrades\n",
		res.KeepAliveCostUSD, res.MeanAccuracyPct(), 100*res.WarmStartRate(), p.PeakMinutes(), p.TotalDowngrades())
	for _, pk := range tr.TopPeaks(2, 20) {
		fmt.Printf("  invocation peak at minute %d (%d invocations/min)\n", pk.Minute, pk.Count)
	}
}
