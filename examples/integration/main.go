// Integration: reproduce the paper's Figure 8 scenario on a single trace —
// take the two state-of-the-art warm-up strategies (Serverless in the
// Wild's hybrid histogram + ARIMA, IceBreaker's FFT forecaster), run each
// standalone (always high-quality models, no memory constraint) and with
// PULSE integrated (PULSE picks the variant and flattens memory peaks),
// and compare keep-alive cost, service time, and accuracy.
//
//	go run ./examples/integration
package main

import (
	"fmt"
	"log"

	pulse "github.com/pulse-serverless/pulse"
)

func main() {
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 21, Horizon: 3 * 24 * 60})
	if err != nil {
		log.Fatal(err)
	}
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))
	simCfg := pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}

	run := func(p pulse.Policy) *pulse.SimulationResult {
		res, err := pulse.Simulate(simCfg, p)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	build := func(b pulse.Baseline, integrated bool) pulse.Policy {
		var p pulse.Policy
		var err error
		if integrated {
			p, err = pulse.NewIntegrated(b, cat, asg)
		} else {
			p, err = pulse.NewBaseline(b, cat, asg)
		}
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	fmt.Printf("%-24s %14s %16s %12s\n", "configuration", "service (s)", "keep-alive ($)", "accuracy (%)")
	for _, b := range []pulse.Baseline{pulse.BaselineWild, pulse.BaselineIceBreaker} {
		orig := run(build(b, false))
		integ := run(build(b, true))
		for _, r := range []*pulse.SimulationResult{orig, integ} {
			fmt.Printf("%-24s %12.0f   %14.4f   %10.2f\n",
				r.Policy, r.TotalServiceSec, r.KeepAliveCostUSD, r.MeanAccuracyPct())
		}
		fmt.Printf("  → integrating PULSE: %+.1f%% keep-alive cost, %+.1f%% service time, %+.2f%% accuracy\n\n",
			(1-integ.KeepAliveCostUSD/orig.KeepAliveCostUSD)*100,
			(1-integ.TotalServiceSec/orig.TotalServiceSec)*100,
			(integ.MeanAccuracyPct()/orig.MeanAccuracyPct()-1)*100)
	}
}
