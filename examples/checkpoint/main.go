// Checkpoint: demonstrate the metadata store (Figure 3) — run PULSE for a
// day of simulated traffic, snapshot its learned state to disk, "restart"
// by restoring into a fresh controller, and verify the restored controller
// picks up with identical keep-alive decisions and intact fairness
// counters.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/metastore"
)

func main() {
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 4, Horizon: 2 * 24 * 60})
	if err != nil {
		log.Fatal(err)
	}
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))
	cfg := core.Config{Catalog: cat, Assignment: asg}

	controller, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Day one: drive the controller minute by minute.
	counts := make([]int, len(asg))
	half := tr.Horizon / 2
	for t := 0; t < half; t++ {
		controller.KeepAlive(t)
		for fn := range counts {
			counts[fn] = tr.Functions[fn].Counts[t]
		}
		controller.RecordInvocations(t, counts)
	}
	fmt.Printf("after day 1: %d inter-arrival observations for fn-00, %d peak minutes, %d downgrades\n",
		controller.History(0).Observations(), controller.PeakMinutes(), controller.TotalDowngrades())

	// Checkpoint to the metadata store.
	dir, err := os.MkdirTemp("", "pulse-metastore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := metastore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.SaveController("example", controller); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, "example.snapshot.json"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d bytes of controller state to %s\n", info.Size(), dir)

	// "Restart": restore into a fresh controller and compare day two.
	restored, err := store.LoadController("example", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored controller resumes at minute %d\n", restored.ResumeMinute())

	diverged := 0
	for t := half; t < tr.Horizon; t++ {
		a := append([]int(nil), controller.KeepAlive(t)...)
		b := restored.KeepAlive(t)
		for fn := range a {
			if a[fn] != b[fn] {
				diverged++
			}
		}
		for fn := range counts {
			counts[fn] = tr.Functions[fn].Counts[t]
		}
		controller.RecordInvocations(t, counts)
		restored.RecordInvocations(t, counts)
	}
	fmt.Printf("day 2 decision divergences between original and restored controller: %d (want 0)\n", diverged)
	if diverged != 0 {
		log.Fatal("restored controller diverged")
	}
	fmt.Println("checkpoint/restore round trip verified")
}
