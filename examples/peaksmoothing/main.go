// Peak smoothing: build a deliberately bursty workload (three functions
// that spike together), then show how PULSE's cross-function optimizer —
// peak detection (Algorithm 1) plus utility-value downgrades (Algorithm 2)
// — flattens the keep-alive memory spikes that the fixed policy and even
// PULSE's individual-only optimizer leave behind.
//
//	go run ./examples/peaksmoothing
package main

import (
	"fmt"
	"log"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/report"
	"github.com/pulse-serverless/pulse/internal/trace"
)

func main() {
	// A synchronized-burst workload: every function is bursty, so the
	// cumulative keep-alive memory shows the abrupt spikes of the paper's
	// Section II motivation.
	arch := []trace.Archetype{
		trace.Bursty{BurstsPerDay: 6, BurstLen: 8, BurstRate: 3, QuietRate: 0.01},
		trace.Bursty{BurstsPerDay: 6, BurstLen: 8, BurstRate: 3, QuietRate: 0.01},
		trace.Bursty{BurstsPerDay: 4, BurstLen: 10, BurstRate: 4, QuietRate: 0.01},
		trace.Periodic{Period: 5, Jitter: 1},
		trace.Poisson{Rate: 0.2},
		trace.Sporadic{MeanGap: 120},
	}
	tr, err := trace.Generate(trace.GeneratorConfig{Seed: 9, Horizon: 24 * 60, Archetypes: arch})
	if err != nil {
		log.Fatal(err)
	}
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))
	simCfg := pulse.SimulationConfig{Trace: tr, Catalog: cat, Assignment: asg}

	run := func(name string, p pulse.Policy) *pulse.SimulationResult {
		res, err := pulse.Simulate(simCfg, p)
		if err != nil {
			log.Fatal(err)
		}
		peak, avg := 0.0, 0.0
		for _, v := range res.PerMinuteKaMMB {
			avg += v
			if v > peak {
				peak = v
			}
		}
		avg /= float64(len(res.PerMinuteKaMMB))
		fmt.Printf("%-28s avg %6.0f MB   peak %6.0f MB   accuracy %.2f%%\n", name, avg, peak, res.MeanAccuracyPct())
		fmt.Printf("  %s\n", report.Sparkline(res.PerMinuteKaMMB, 76))
		return res
	}

	ow, err := pulse.NewBaseline(pulse.BaselineOpenWhisk, cat, asg)
	if err != nil {
		log.Fatal(err)
	}
	run("openwhisk fixed 10-min", ow)

	indiv, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg, DisableGlobalOpt: true})
	if err != nil {
		log.Fatal(err)
	}
	run("PULSE, individual opt only", indiv)

	full, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg})
	if err != nil {
		log.Fatal(err)
	}
	run("PULSE, full (global opt)", full)

	fmt.Printf("\npeaks detected: %d, downgrades applied: %d\n", full.PeakMinutes(), full.TotalDowngrades())

	// The downgrade fairness at work: Algorithm 2's priority structure
	// spreads downgrades instead of hammering one model.
	fmt.Println("\nper-function downgrade counts (priority structure):")
	for fn := range asg {
		fam := cat.Families[asg[fn]]
		// Priority counts live inside the policy; expose via the core API.
		fmt.Printf("  fn-%02d (%-8s): %.0f\n", fn, fam.Name, priorityCount(full, fn))
	}
}

func priorityCount(p *core.Pulse, fn int) float64 {
	// The detector and histories are exported for observability; downgrade
	// counts are tracked per function in the global optimizer's priority
	// structure, reachable through the policy's accessors.
	return p.PriorityCount(fn)
}
