// Churn: simulate PULSE on a workload whose function population changes
// while the replay is running — functions register mid-trace (starting with
// cold histories) and deregister before the horizon (tombstoning their
// slots). Both PULSE and the fixed baseline are constructed from the
// minute-0 population only; every later arrival reaches them through the
// online lifecycle API, the same path pulsed serves at
// POST /functions and DELETE /functions/{name}.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/cluster"
	"github.com/pulse-serverless/pulse/internal/core"
	"github.com/pulse-serverless/pulse/internal/policy"
	"github.com/pulse-serverless/pulse/internal/telemetry"
)

// lifecycleLog prints the register/deregister event stream the engine
// emits. It implements the optional telemetry.LifecycleObserver extension;
// embedding Nop supplies the rest of the Observer surface.
type lifecycleLog struct {
	telemetry.Nop
	shown, total int
}

const maxShown = 12

func (l *lifecycleLog) ObserveRegister(s telemetry.RegisterSample) {
	l.total++
	if l.shown < maxShown {
		l.shown++
		fmt.Printf("  minute %5d  + register   %-8s (slot %d, family %d)\n", s.Minute, s.Name, s.Function, s.Family)
	}
}

func (l *lifecycleLog) ObserveDeregister(s telemetry.DeregisterSample) {
	l.total++
	if l.shown < maxShown {
		l.shown++
		fmt.Printf("  minute %5d  - deregister %-8s (slot %d tombstoned)\n", s.Minute, s.Name, s.Function)
	}
}

func main() {
	// 1. A two-day workload where most functions have finite lifetimes:
	//    Churn is the probability that a function (other than the first)
	//    arrives after minute 0 and/or departs before the horizon.
	tr, err := pulse.GenerateTrace(pulse.TraceConfig{Seed: 21, Horizon: 2 * 24 * 60, Churn: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, len(tr.Functions))

	// 2. Policies know only the minute-0 population. InitialPopulation
	//    extracts it; the trace's later arrivals will be introduced online.
	names, initAsg, err := cluster.InitialPopulation(tr, asg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d functions over %d minutes, %d live at minute 0\n\n",
		len(tr.Functions), tr.Horizon, len(names))

	ow, err := policy.NewFixedNamed(cat, initAsg, pulse.DefaultKeepAliveWindow, policy.QualityHighest, names)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.New(core.Config{Catalog: cat, Assignment: initAsg, Names: names})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay. pulse.Simulate detects the churn trace and drives the
	//    lifecycle-aware engine path; the observer sees each event.
	events := &lifecycleLog{}
	fmt.Println("lifecycle events (PULSE run):")
	rPulse, err := pulse.Simulate(pulse.SimulationConfig{
		Trace: tr, Catalog: cat, Assignment: asg, Observer: events,
	}, p)
	if err != nil {
		log.Fatal(err)
	}
	if events.total > events.shown {
		fmt.Printf("  … %d more lifecycle events\n", events.total-events.shown)
	}
	rOW, err := pulse.Simulate(pulse.SimulationConfig{
		Trace: tr, Catalog: cat, Assignment: asg,
	}, ow)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The paper's headline metrics still hold with the population in
	//    flux: arrivals start cold by construction, tombstoned slots cost
	//    nothing, and the mixed-quality win carries through.
	fmt.Printf("\n%-22s %14s %16s %14s %11s\n", "policy", "service time", "keep-alive cost", "accuracy", "warm rate")
	for _, r := range []*pulse.SimulationResult{rOW, rPulse} {
		fmt.Printf("%-22s %12.0f s %15.4f $ %12.2f %% %10.1f %%\n",
			r.Policy, r.TotalServiceSec, r.KeepAliveCostUSD, r.MeanAccuracyPct(), 100*r.WarmStartRate())
	}
	fmt.Printf("\nPULSE under churn: %.1f%% keep-alive cost reduction, %.1f%% service-time reduction\n",
		(1-rPulse.KeepAliveCostUSD/rOW.KeepAliveCostUSD)*100,
		(1-rPulse.TotalServiceSec/rOW.TotalServiceSec)*100)
}
