package pulse_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment). Each benchmark
// runs the corresponding experiment end-to-end per iteration and reports
// its headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both times the reproduction machinery and prints the reproduced numbers.
// Benchmark-scale defaults (1-day trace, few runs) keep the suite fast;
// cmd/experiments runs the same experiments at paper scale (14 days,
// 1000 runs).

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	pulse "github.com/pulse-serverless/pulse"
	"github.com/pulse-serverless/pulse/internal/experiments"
	"github.com/pulse-serverless/pulse/internal/trace"
)

// benchOpts is the benchmark-scale experiment configuration.
func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:           1,
		HorizonMinutes: trace.MinutesPerDay,
		Runs:           3,
	}
}

func BenchmarkTableI_ModelCharacterization(b *testing.B) {
	var warm float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		warm = rows[0].MeanWarmSec
	}
	b.ReportMetric(warm, "GPT-Small-warm-s")
}

func benchPeakTable(b *testing.B, run func(experiments.Options) ([]experiments.PeakApproachResult, error)) {
	b.Helper()
	var rows []experiments.PeakApproachResult
	for i := 0; i < b.N; i++ {
		var err error
		if rows, err = run(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].KeepAliveUSD*100, "allhigh-cost-cents")
	b.ReportMetric(rows[1].KeepAliveUSD*100, "alllow-cost-cents")
	b.ReportMetric(rows[3].AccuracyPct, "intelligent-accuracy-pct")
}

func BenchmarkTableII_PeakI(b *testing.B) {
	benchPeakTable(b, experiments.TableII)
}

func BenchmarkTableIII_PeakII(b *testing.B) {
	benchPeakTable(b, experiments.TableIII)
}

func BenchmarkFigure1_InterArrivalDiversity(b *testing.B) {
	var series int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		series = len(rows)
	}
	b.ReportMetric(float64(series), "functions")
}

func BenchmarkFigure2_TemporalDrift(b *testing.B) {
	opts := benchOpts()
	opts.HorizonMinutes = 6 * trace.MinutesPerDay
	var periods int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2(opts)
		if err != nil {
			b.Fatal(err)
		}
		periods = len(rows)
	}
	b.ReportMetric(float64(periods), "periods")
}

func BenchmarkFigure4_IndividualOptMemory(b *testing.B) {
	var fixedAvg, indivAvg float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		fixedAvg, indivAvg = rows[0].AvgKaMMB, rows[1].AvgKaMMB
	}
	b.ReportMetric(fixedAvg, "fixed-avg-KaM-MB")
	b.ReportMetric(indivAvg, "indiv-avg-KaM-MB")
}

func BenchmarkFigure5_CostAccuracyTradeoff(b *testing.B) {
	var pts []experiments.TradeoffPoint
	for i := 0; i < b.N; i++ {
		var err error
		if pts, err = experiments.Figure5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[2].KeepAliveUSD*100, "pulse-cost-cents")
	b.ReportMetric(pts[2].AccuracyPct, "pulse-accuracy-pct")
}

func BenchmarkFigure6a_ImprovementOverOpenWhisk(b *testing.B) {
	var costPct, svcPct, accPct float64
	for i := 0; i < b.N; i++ {
		imp, err := experiments.Figure6a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		costPct, svcPct, accPct = imp.CostPct, imp.ServiceTimePct, imp.AccuracyPct
	}
	b.ReportMetric(costPct, "cost-improvement-pct")    // paper: 39.5
	b.ReportMetric(svcPct, "service-improvement-pct")  // paper: 8.8
	b.ReportMetric(accPct, "accuracy-improvement-pct") // paper: -0.6
}

func BenchmarkFigure6b_ErrorVsIdeal(b *testing.B) {
	var pulseMAE, owMAE float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		pulseMAE, owMAE = res.PulseMAE, res.OpenWhiskMAE
	}
	b.ReportMetric(pulseMAE, "pulse-MAE-pct")
	b.ReportMetric(owMAE, "openwhisk-MAE-pct")
}

func BenchmarkFigure7_PeakSmoothing(b *testing.B) {
	var fixedPeak, pulsePeak float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		fixedPeak, pulsePeak = rows[0].PeakKaMMB, rows[1].PeakKaMMB
	}
	b.ReportMetric(fixedPeak, "fixed-peak-KaM-MB")
	b.ReportMetric(pulsePeak, "pulse-peak-KaM-MB")
}

func BenchmarkFigure8_Integration(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 2
	var wildCost, iceCost float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
		wildCost, iceCost = res.Wild.CostPct, res.IceBreaker.CostPct
	}
	b.ReportMetric(wildCost, "wild-cost-improvement-pct")      // paper: 99
	b.ReportMetric(iceCost, "icebreaker-cost-improvement-pct") // paper: 14
}

func BenchmarkFigure9_MILPOverhead(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 2
	var res *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = experiments.Figure9(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PulseMeanRatio*1e6, "pulse-overhead-ppm")
	b.ReportMetric(res.MILPMeanRatio*1e6, "milp-overhead-ppm")
	b.ReportMetric(res.PulseAccuracyPct-res.MILPAccuracyPct, "pulse-minus-milp-accuracy-pct")
}

func benchSweep(b *testing.B, run func(experiments.Options) ([]experiments.SweepPoint, error)) []experiments.SweepPoint {
	b.Helper()
	opts := benchOpts()
	opts.Runs = 2
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		if pts, err = run(opts); err != nil {
			b.Fatal(err)
		}
	}
	return pts
}

func BenchmarkFigure10_ThresholdTechniques(b *testing.B) {
	pts := benchSweep(b, experiments.Figure10)
	b.ReportMetric(pts[0].CostPct, "T1-cost-improvement-pct")
	b.ReportMetric(pts[1].CostPct, "T2-cost-improvement-pct")
}

func BenchmarkFigure11_MemoryThresholds(b *testing.B) {
	pts := benchSweep(b, experiments.Figure11)
	for i, label := range []string{"M1", "M2", "M3"} {
		b.ReportMetric(pts[i].CostPct, label+"-cost-improvement-pct")
	}
}

func BenchmarkFigure12_LocalWindows(b *testing.B) {
	pts := benchSweep(b, experiments.Figure12)
	for i, label := range []string{"w10", "w60", "w120"} {
		b.ReportMetric(pts[i].CostPct, label+"-cost-improvement-pct")
	}
}

// Ablation benches for the design choices DESIGN.md §5 calls out.

func BenchmarkExtensionHoltWinters(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 2
	var costPct float64
	for i := 0; i < b.N; i++ {
		imp, err := experiments.ExtensionHoltWinters(opts)
		if err != nil {
			b.Fatal(err)
		}
		costPct = imp.CostPct
	}
	b.ReportMetric(costPct, "hw-cost-improvement-pct")
}

func BenchmarkAblationHistoryBlend(b *testing.B) {
	pts := benchSweep(b, experiments.AblationHistoryBlend)
	for i, label := range []string{"both", "local", "global"} {
		b.ReportMetric(pts[i].AccuracyPct, label+"-accuracy-change-pct")
	}
}

func BenchmarkAblationPriorityTerm(b *testing.B) {
	pts := benchSweep(b, experiments.AblationPriorityTerm)
	b.ReportMetric(pts[0].CostPct, "with-priority-cost-pct")
	b.ReportMetric(pts[1].CostPct, "without-priority-cost-pct")
}

func BenchmarkAblationPriorKaM(b *testing.B) {
	pts := benchSweep(b, experiments.AblationPriorKaM)
	b.ReportMetric(pts[0].ServiceTimePct, "algorithm1-service-pct")
	b.ReportMetric(pts[1].ServiceTimePct, "naive-service-pct")
}

func BenchmarkAblationDowngradeStep(b *testing.B) {
	pts := benchSweep(b, experiments.AblationDowngradeStep)
	for i, label := range []string{"byone", "byone-evict", "evict"} {
		b.ReportMetric(pts[i].ServiceTimePct, label+"-service-pct")
	}
}

func BenchmarkAblationDowngradeSelection(b *testing.B) {
	pts := benchSweep(b, experiments.AblationDowngradeSelection)
	b.ReportMetric(pts[0].AccuracyPct, "utility-accuracy-change-pct")
	b.ReportMetric(pts[1].AccuracyPct, "random-accuracy-change-pct")
}

// BenchmarkPulseSharded measures controller throughput at cluster scale —
// 10k functions per minute tick — serial versus one shard per CPU. The
// decisions are bit-identical at every shard count (the differential
// harness proves it); this benchmark shows what the sharding buys:
// RecordInvocations fans the per-function optimizer out to the persistent
// worker pool.
func BenchmarkPulseSharded(b *testing.B) {
	const nFunctions = 10_000
	cat := pulse.Catalog()
	asg := pulse.UniformAssignment(cat, nFunctions)

	// Pre-generate a cycle of deterministic count vectors (~25% of
	// functions active per minute) so the benchmark loop measures the
	// controller, not trace generation.
	rng := rand.New(rand.NewSource(17))
	counts := make([][]int, 64)
	for i := range counts {
		counts[i] = make([]int, nFunctions)
		for fn := range counts[i] {
			if rng.Intn(4) == 0 {
				counts[i][fn] = 1 + rng.Intn(3)
			}
		}
	}

	for _, shards := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := pulse.New(pulse.Config{Catalog: cat, Assignment: asg, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for t := 0; t < b.N; t++ {
				p.KeepAlive(t)
				p.RecordInvocations(t, counts[t&63])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim-minutes/s")
		})
	}
}

// BenchmarkEndToEndSimulationMinute measures raw simulator throughput:
// simulated minutes per second under full PULSE on the default workload.
func BenchmarkEndToEndSimulationMinute(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*opts.HorizonMinutes)*float64(b.N)/b.Elapsed().Seconds(), "sim-minutes/s")
}
